//===- domains/memory_model.h - Simulated device memory --------*- C++ -*-===//
///
/// \file
/// The paper's scalability results are framed by a 24 GB Titan RTX: exact
/// analyses run out of GPU memory once the number of tracked points
/// explodes, while the relaxed analysis fits. This reproduction runs on
/// CPU, so DeviceMemoryModel charges each abstract state the bytes a GPU
/// resident copy would need (nodes x activation-dim x sizeof(double)) and
/// reports OOM when the peak exceeds a configurable budget. The *relative*
/// growth — the thing the paper's Tables 3 and 8 measure — is preserved
/// exactly.
///
/// Two kinds of callers use the model:
///
///  * legacy callers charge() and abort the analysis on failure — the
///    failed charge is recorded in the peak, so the model stays exhausted;
///  * resilient callers tryCharge() before committing a state: a charge
///    that would not fit leaves the model untouched, so the caller can
///    roll back to a checkpoint, coarsen, and try again.
///
/// A charge interceptor hook lets the fault-injection harness force
/// deterministic OOM at a chosen layer without shrinking the budget.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_MEMORY_MODEL_H
#define GENPROVE_DOMAINS_MEMORY_MODEL_H

#include "src/obs/metrics.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace genprove {

/// Bytes of a device-resident state of Nodes points of Dim doubles each,
/// saturating instead of wrapping. Negative inputs (corrupt bookkeeping)
/// and products that overflow size_t both saturate to SIZE_MAX, which any
/// finite budget rejects — a wrapped product could silently pass.
inline size_t stateBytes(int64_t Nodes, int64_t Dim) {
  constexpr size_t Saturated = std::numeric_limits<size_t>::max();
  if (Nodes < 0 || Dim < 0)
    return Saturated;
  const uint64_t N = static_cast<uint64_t>(Nodes);
  const uint64_t D = static_cast<uint64_t>(Dim);
  if (N != 0 && D > Saturated / N)
    return Saturated;
  const uint64_t Points = N * D;
  if (Points > Saturated / sizeof(double))
    return Saturated;
  return static_cast<size_t>(Points * sizeof(double));
}

/// Byte accounting with a budget; analyses poll ok() after each charge.
class DeviceMemoryModel {
public:
  /// Forced-failure hook for fault injection: return true to make the next
  /// charge fail regardless of the budget.
  using ChargeInterceptor = std::function<bool(size_t Bytes)>;

  /// Budget of 0 means unlimited.
  explicit DeviceMemoryModel(size_t BudgetBytes = 0)
      : BudgetBytes(BudgetBytes) {}

  /// Charge the current abstract state size; returns false once the peak
  /// exceeds the budget (the analysis should abort with OOM).
  /// Thread-safe: the peak is a CAS max, so concurrent charge/tryCharge
  /// calls from pool workers never lose an update. The interceptor hook
  /// itself is installed before propagation starts and only consulted
  /// here; resilient propagation funnels all charges through a single
  /// post-join call per layer, so interceptor firing stays deterministic.
  bool charge(size_t Bytes) {
    updatePeak(Bytes);
    if (Interceptor && Interceptor(Bytes)) {
      noteChargeFailure(/*Try=*/false);
      return false;
    }
    if (BudgetBytes != 0 &&
        PeakBytes.load(std::memory_order_relaxed) > BudgetBytes) {
      noteChargeFailure(/*Try=*/false);
      return false;
    }
    return true;
  }

  /// Charge a state of Nodes representation points of Dim doubles each.
  bool chargeState(int64_t Nodes, int64_t Dim) {
    return charge(stateBytes(Nodes, Dim));
  }

  /// Charge only if the state fits: on success the peak is updated and the
  /// call returns true; on failure the model is left untouched, so a
  /// resilient caller can roll back and retry with a smaller state.
  bool tryCharge(size_t Bytes) {
    if (Interceptor && Interceptor(Bytes)) {
      noteChargeFailure(/*Try=*/true);
      return false;
    }
    if (BudgetBytes != 0 && Bytes > BudgetBytes) {
      noteChargeFailure(/*Try=*/true);
      return false;
    }
    updatePeak(Bytes);
    return true;
  }

  bool tryChargeState(int64_t Nodes, int64_t Dim) {
    return tryCharge(stateBytes(Nodes, Dim));
  }

  /// Would a state of this size fit? Pure query: no peak update, no
  /// interceptor consultation (the interceptor models a transient device
  /// fault, not a capacity limit).
  bool wouldFit(int64_t Nodes, int64_t Dim) const {
    return BudgetBytes == 0 || stateBytes(Nodes, Dim) <= BudgetBytes;
  }

  /// Install (or clear, with an empty function) the fault-injection hook.
  void setInterceptor(ChargeInterceptor Hook) {
    Interceptor = std::move(Hook);
  }

  size_t peakBytes() const {
    return PeakBytes.load(std::memory_order_relaxed);
  }
  size_t budgetBytes() const { return BudgetBytes; }
  bool exhausted() const {
    return BudgetBytes != 0 &&
           PeakBytes.load(std::memory_order_relaxed) > BudgetBytes;
  }

  void reset() { PeakBytes.store(0, std::memory_order_relaxed); }

private:
  void updatePeak(size_t Bytes) {
    size_t Cur = PeakBytes.load(std::memory_order_relaxed);
    while (Bytes > Cur &&
           !PeakBytes.compare_exchange_weak(Cur, Bytes,
                                            std::memory_order_relaxed)) {
    }
    if (BudgetBytes != 0 && metricsEnabled()) {
      static Gauge &Ratio =
          MetricsRegistry::global().gauge("device.peak_budget_ratio");
      Ratio.setMax(static_cast<double>(
                       PeakBytes.load(std::memory_order_relaxed)) /
                   static_cast<double>(BudgetBytes));
    }
  }

  /// Rejected charges used to vanish into a bool; count them so memory
  /// pressure shows up in the metrics snapshot (docs/OBSERVABILITY.md).
  static void noteChargeFailure(bool Try) {
    if (!metricsEnabled())
      return;
    static Counter &ChargeFailures =
        MetricsRegistry::global().counter("device.charge_failures");
    static Counter &TryChargeFailures =
        MetricsRegistry::global().counter("device.try_charge_failures");
    (Try ? TryChargeFailures : ChargeFailures).add(1);
  }

  size_t BudgetBytes;
  std::atomic<size_t> PeakBytes{0};
  ChargeInterceptor Interceptor;
};

} // namespace genprove

#endif // GENPROVE_DOMAINS_MEMORY_MODEL_H
