//===- domains/propagate.cpp ----------------------------------*- C++ -*-===//

#include "src/domains/propagate.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

#include <algorithm>
#include <cmath>

namespace genprove {

const char *layerKindName(Layer::Kind K) {
  switch (K) {
  case Layer::Kind::Linear:
    return "Linear";
  case Layer::Kind::Conv2d:
    return "Conv2d";
  case Layer::Kind::ConvTranspose2d:
    return "ConvTranspose2d";
  case Layer::Kind::ReLU:
    return "ReLU";
  case Layer::Kind::Flatten:
    return "Flatten";
  case Layer::Kind::Reshape:
    return "Reshape";
  }
  return "?";
}

namespace {

double evalCdf(const ParamCdf &Cdf, double T) { return Cdf ? Cdf(T) : T; }

/// Reshape a flat [K, N] row batch to the layer activation shape
/// [K, ...SampleShape[1:]].
Tensor rowsToActivations(const Tensor &Rows, const Shape &SampleShape) {
  std::vector<int64_t> Dims = SampleShape.dims();
  Dims[0] = Rows.dim(0);
  return Rows.reshaped(Shape(Dims));
}

/// Flatten an activation batch back to [K, N].
Tensor activationsToRows(const Tensor &Acts) {
  const int64_t K = Acts.dim(0);
  return Acts.reshaped({K, Acts.numel() / std::max<int64_t>(K, 1)});
}

/// Apply one affine layer to every region in place (exact for curves,
/// interval arithmetic for boxes), batching all rows of a kind into a
/// single layer application.
void applyAffineLayer(const Layer &L, const Shape &InShape,
                      std::vector<Region> &Regions) {
  // Gather constant rows (curve a0) for the affine map and higher-degree
  // rows for the linear map.
  int64_t NumA0 = 0, NumHi = 0, NumBoxes = 0;
  for (const auto &R : Regions) {
    if (R.Kind == RegionKind::Curve) {
      NumA0 += 1;
      NumHi += R.degree();
    } else {
      NumBoxes += 1;
    }
  }
  const int64_t N =
      Regions.empty() ? 0 : Regions.front().dim();
  if (Regions.empty())
    return;

  Tensor A0Rows({std::max<int64_t>(NumA0, 1), N});
  Tensor HiRows({std::max<int64_t>(NumHi, 1), N});
  Tensor Centers({std::max<int64_t>(NumBoxes, 1), N});
  Tensor Radii({std::max<int64_t>(NumBoxes, 1), N});

  int64_t IA0 = 0, IHi = 0, IBox = 0;
  for (const auto &R : Regions) {
    if (R.Kind == RegionKind::Curve) {
      std::copy(R.Coeffs.data(), R.Coeffs.data() + N,
                A0Rows.data() + IA0 * N);
      ++IA0;
      for (int64_t D = 1; D <= R.degree(); ++D) {
        std::copy(R.Coeffs.data() + D * N, R.Coeffs.data() + (D + 1) * N,
                  HiRows.data() + IHi * N);
        ++IHi;
      }
    } else {
      std::copy(R.Center.data(), R.Center.data() + N,
                Centers.data() + IBox * N);
      std::copy(R.Radius.data(), R.Radius.data() + N,
                Radii.data() + IBox * N);
      ++IBox;
    }
  }

  Tensor NewA0, NewHi, NewCenters, NewRadii;
  if (NumA0 > 0)
    NewA0 = activationsToRows(
        L.applyAffine(rowsToActivations(A0Rows, InShape)));
  if (NumHi > 0)
    NewHi = activationsToRows(
        L.applyLinear(rowsToActivations(HiRows, InShape)));
  if (NumBoxes > 0) {
    Tensor C = rowsToActivations(Centers, InShape);
    Tensor Rr = rowsToActivations(Radii, InShape);
    L.applyToBox(C, Rr);
    NewCenters = activationsToRows(C);
    NewRadii = activationsToRows(Rr);
  }

  const int64_t OutN = NumA0 > 0   ? NewA0.dim(1)
                       : NumBoxes > 0 ? NewCenters.dim(1)
                                      : N;
  IA0 = IHi = IBox = 0;
  for (auto &R : Regions) {
    if (R.Kind == RegionKind::Curve) {
      const int64_t Degree = R.degree();
      Tensor Coeffs({Degree + 1, OutN});
      std::copy(NewA0.data() + IA0 * OutN, NewA0.data() + (IA0 + 1) * OutN,
                Coeffs.data());
      ++IA0;
      for (int64_t D = 1; D <= Degree; ++D) {
        std::copy(NewHi.data() + IHi * OutN, NewHi.data() + (IHi + 1) * OutN,
                  Coeffs.data() + D * OutN);
        ++IHi;
      }
      R.Coeffs = std::move(Coeffs);
    } else {
      Tensor C({1, OutN}), Rr({1, OutN});
      std::copy(NewCenters.data() + IBox * OutN,
                NewCenters.data() + (IBox + 1) * OutN, C.data());
      std::copy(NewRadii.data() + IBox * OutN,
                NewRadii.data() + (IBox + 1) * OutN, Rr.data());
      R.Center = std::move(C);
      R.Radius = std::move(Rr);
      ++IBox;
    }
  }
}

/// Interval ReLU on a box region, in place.
void reluBox(Region &Box) {
  const int64_t N = Box.dim();
  for (int64_t J = 0; J < N; ++J) {
    const double Lo = std::max(Box.Center[J] - Box.Radius[J], 0.0);
    const double Hi = std::max(Box.Center[J] + Box.Radius[J], 0.0);
    Box.Center[J] = 0.5 * (Lo + Hi);
    Box.Radius[J] = 0.5 * (Hi - Lo);
  }
}

/// Exact ReLU on a curve region: split at every component zero crossing,
/// then mask each piece by the per-component sign at its midpoint.
void reluCurve(const Region &Curve, const PropagateConfig &Config,
               std::vector<Region> &Out, PropagateStats &Stats) {
  GENPROVE_SPAN("relu_split");
  const int64_t N = Curve.dim();
  std::vector<double> Cuts;
  Cuts.push_back(Curve.T0);
  Cuts.push_back(Curve.T1);
  for (int64_t J = 0; J < N; ++J)
    curveComponentRoots(Curve, J, Cuts);
  std::sort(Cuts.begin(), Cuts.end());
  Cuts.erase(std::unique(Cuts.begin(), Cuts.end(),
                         [&](double A, double B) {
                           return B - A < Config.SplitEps;
                         }),
             Cuts.end());
  // Guard the boundaries after deduplication: never lose the piece.
  if (Cuts.size() == 1)
    Cuts.push_back(Curve.T1);
  Cuts.front() = Curve.T0;
  Cuts.back() = Curve.T1;

  const int64_t Degree = Curve.degree();
  for (size_t I = 0; I + 1 < Cuts.size(); ++I) {
    const double T0 = Cuts[I];
    const double T1 = Cuts[I + 1];
    const double Tm = 0.5 * (T0 + T1);
    Region Piece;
    Piece.Kind = RegionKind::Curve;
    Piece.T0 = T0;
    Piece.T1 = T1;
    Piece.Weight = evalCdf(Config.Cdf, T1) - evalCdf(Config.Cdf, T0);
    Piece.Coeffs = Tensor({Degree + 1, N});
    for (int64_t J = 0; J < N; ++J) {
      if (evalCurveComponent(Curve, Tm, J) > 0.0)
        for (int64_t D = 0; D <= Degree; ++D)
          Piece.Coeffs.at(D, J) = Curve.Coeffs.at(D, J);
      // else: all coefficients stay zero — the component is clamped.
    }
    Out.push_back(std::move(Piece));
  }
  Stats.NumSplits += static_cast<int64_t>(Cuts.size()) - 2;
}

} // namespace

std::vector<Region> propagateRegions(const std::vector<const Layer *> &Layers,
                                     const Shape &InputShape,
                                     std::vector<Region> Regions,
                                     const PropagateConfig &Config,
                                     DeviceMemoryModel &Memory,
                                     PropagateStats &Stats) {
  GENPROVE_SPAN("propagate");
  // Registered once; add() is a no-op while metrics are disabled.
  static Counter &SplitsCtr =
      MetricsRegistry::global().counter("propagate.splits");
  static Counter &BoxedCtr =
      MetricsRegistry::global().counter("propagate.boxed");
  static Counter &OomCtr = MetricsRegistry::global().counter("propagate.oom");
  static Histogram &LayerSecondsHist =
      MetricsRegistry::global().histogram("propagate.layer_seconds");

  // Stats may arrive pre-populated (merged analyses); count only the
  // deltas produced by this call.
  const int64_t Splits0 = Stats.NumSplits;
  const int64_t Boxed0 = Stats.NumBoxed;
  const auto FlushCounters = [&] {
    SplitsCtr.add(Stats.NumSplits - Splits0);
    BoxedCtr.add(Stats.NumBoxed - Boxed0);
    OomCtr.add(Stats.OutOfMemory ? 1 : 0);
  };

  Shape CurShape = InputShape;
  if (!Memory.chargeState(totalNodes(Regions),
                          Regions.empty() ? 0 : Regions.front().dim())) {
    Stats.OutOfMemory = true;
    FlushCounters();
    return {};
  }

  for (size_t Li = 0; Li < Layers.size(); ++Li) {
    const Layer *L = Layers[Li];
    LayerRecord Rec;
    Rec.Index = static_cast<int64_t>(Li);
    Rec.Kind = layerKindName(L->kind());
    Rec.RegionsIn = static_cast<int64_t>(Regions.size());
    Rec.NodesIn = totalNodes(Regions);
    const int64_t LayerSplits0 = Stats.NumSplits;
    Timer LayerClock;
    GENPROVE_SPAN(Rec.Kind);

    // Relaxation fires right before convolutional layers (Section 3.1).
    const bool IsConvolutional = L->kind() == Layer::Kind::Conv2d ||
                                 L->kind() == Layer::Kind::ConvTranspose2d;
    if (Config.EnableRelax && IsConvolutional) {
      GENPROVE_SPAN("relax");
      const int64_t Before = static_cast<int64_t>(Regions.size());
      relaxRegions(Regions, Config.Relax);
      Rec.Boxed = Before - static_cast<int64_t>(Regions.size());
      Stats.NumBoxed += Rec.Boxed;
    }

    if (L->isAffine()) {
      applyAffineLayer(*L, CurShape, Regions);
      CurShape = L->outputShape(CurShape);
    } else {
      std::vector<Region> Next;
      Next.reserve(Regions.size());
      int64_t RunningNodes = 0;
      for (auto &R : Regions) {
        const size_t Before = Next.size();
        if (R.Kind == RegionKind::Box) {
          reluBox(R);
          RunningNodes += 2;
          Next.push_back(std::move(R));
        } else {
          const int64_t NodesPerPiece = R.degree() + 1;
          reluCurve(R, Config, Next, Stats);
          RunningNodes +=
              static_cast<int64_t>(Next.size() - Before) * NodesPerPiece;
        }
        // Charge incrementally: ReLU splitting can blow the state up
        // mid-layer, and waiting until the layer finishes would let the
        // host allocation far exceed the simulated device budget.
        if (!Memory.chargeState(RunningNodes, CurShape.numel())) {
          Stats.OutOfMemory = true;
          Stats.OomLayer = static_cast<int64_t>(Li);
          Rec.RegionsOut = static_cast<int64_t>(Next.size());
          Rec.NodesOut = RunningNodes;
          Rec.Splits = Stats.NumSplits - LayerSplits0;
          Rec.ChargedBytes = static_cast<size_t>(RunningNodes) *
                             static_cast<size_t>(CurShape.numel()) *
                             sizeof(double);
          Rec.Seconds = LayerClock.seconds();
          Stats.Layers.push_back(Rec);
          FlushCounters();
          return {};
        }
      }
      Regions = std::move(Next);
    }

    Stats.MaxRegions =
        std::max(Stats.MaxRegions, static_cast<int64_t>(Regions.size()));
    const int64_t Nodes = totalNodes(Regions);
    Stats.MaxNodes = std::max(Stats.MaxNodes, Nodes);
    Rec.RegionsOut = static_cast<int64_t>(Regions.size());
    Rec.NodesOut = Nodes;
    Rec.Splits = Stats.NumSplits - LayerSplits0;
    Rec.ChargedBytes = static_cast<size_t>(Nodes) *
                       static_cast<size_t>(CurShape.numel()) * sizeof(double);
    Rec.Seconds = LayerClock.seconds();
    LayerSecondsHist.record(Rec.Seconds);
    Stats.Layers.push_back(Rec);
    if (!Memory.chargeState(Nodes, CurShape.numel())) {
      Stats.OutOfMemory = true;
      Stats.OomLayer = static_cast<int64_t>(Li);
      FlushCounters();
      return {};
    }
  }
  FlushCounters();
  return Regions;
}

} // namespace genprove
