//===- domains/propagate.cpp ----------------------------------*- C++ -*-===//

#include "src/domains/propagate.h"

#include "src/domains/fault_injection.h"
#include "src/domains/prop_cache.h"
#include "src/nn/linear.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/ops.h"
#include "src/util/fp.h"
#include "src/util/hash.h"
#include "src/util/timer.h"

#include <algorithm>
#include <cmath>

namespace genprove {

const char *layerKindName(Layer::Kind K) {
  switch (K) {
  case Layer::Kind::Linear:
    return "Linear";
  case Layer::Kind::Conv2d:
    return "Conv2d";
  case Layer::Kind::ConvTranspose2d:
    return "ConvTranspose2d";
  case Layer::Kind::ReLU:
    return "ReLU";
  case Layer::Kind::Flatten:
    return "Flatten";
  case Layer::Kind::Reshape:
    return "Reshape";
  }
  return "?";
}

const char *degradeRungName(DegradeRung R) {
  switch (R) {
  case DegradeRung::None:
    return "-";
  case DegradeRung::LocalBox:
    return "local";
  case DegradeRung::FullBox:
    return "box";
  }
  return "?";
}

namespace {

double evalCdf(const ParamCdf &Cdf, double T) { return Cdf ? Cdf(T) : T; }

/// Reshape a flat [K, N] row batch to the layer activation shape
/// [K, ...SampleShape[1:]].
Tensor rowsToActivations(const Tensor &Rows, const Shape &SampleShape) {
  std::vector<int64_t> Dims = SampleShape.dims();
  Dims[0] = Rows.dim(0);
  return Rows.reshaped(Shape(Dims));
}

/// Flatten an activation batch back to [K, N].
Tensor activationsToRows(const Tensor &Acts) {
  const int64_t K = Acts.dim(0);
  return Acts.reshaped({K, Acts.numel() / std::max<int64_t>(K, 1)});
}

/// Interval ReLU applied elementwise to a [Rows, N] batch of box centers
/// and radii; per element identical to reluBox() below, just on the
/// batched tensors the fused affine kernel produces (each element is
/// independent, so the parallel split cannot change results).
void reluBoxRows(Tensor &Center, Tensor &Radius) {
  double *C = Center.data();
  double *R = Radius.data();
  const int64_t Count = Center.numel();
  if (soundRoundingEnabled()) {
    parallelFor(Count, [&](int64_t Begin, int64_t End) {
      for (int64_t I = Begin; I < End; ++I) {
        const Interval Clamped =
            Interval(fp::subDown(C[I], R[I]), fp::addUp(C[I], R[I])).relu();
        Clamped.toCenterRadius(C[I], R[I]);
      }
    });
    return;
  }
  parallelFor(Count, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I) {
      const double Lo = std::max(C[I] - R[I], 0.0);
      const double Hi = std::max(C[I] + R[I], 0.0);
      C[I] = 0.5 * (Lo + Hi);
      R[I] = 0.5 * (Hi - Lo);
    }
  });
}

/// Apply one affine layer to every region in place (exact for curves,
/// interval arithmetic for boxes), batching all rows of a kind into a
/// single layer application. With \p FuseRelu (the layer itself, known to
/// be Linear and followed by a ReLU) the box planes run through the fused
/// single-pass kernel and the interval ReLU is applied to the box rows
/// while they are cache-hot; the caller's ReLU iteration must then skip
/// reluBox on boxes (curves are untouched — they still split at the ReLU).
void applyAffineLayer(const Layer &L, const Shape &InShape,
                      std::vector<Region> &Regions,
                      const Linear *FuseRelu) {
  // Count rows of each kind and precompute every region's destination
  // offset, so the gather/scatter copy loops below can run
  // region-parallel with disjoint writes.
  const int64_t NumRegions = static_cast<int64_t>(Regions.size());
  int64_t NumA0 = 0, NumHi = 0, NumBoxes = 0;
  std::vector<int64_t> A0At(static_cast<size_t>(NumRegions));
  std::vector<int64_t> HiAt(static_cast<size_t>(NumRegions));
  std::vector<int64_t> BoxAt(static_cast<size_t>(NumRegions));
  for (int64_t I = 0; I < NumRegions; ++I) {
    const auto &R = Regions[static_cast<size_t>(I)];
    if (R.Kind == RegionKind::Curve) {
      A0At[static_cast<size_t>(I)] = NumA0++;
      HiAt[static_cast<size_t>(I)] = NumHi;
      NumHi += R.degree();
    } else {
      BoxAt[static_cast<size_t>(I)] = NumBoxes++;
    }
  }
  const int64_t N =
      Regions.empty() ? 0 : Regions.front().dim();
  if (Regions.empty())
    return;

  Tensor A0Rows({std::max<int64_t>(NumA0, 1), N});
  Tensor HiRows({std::max<int64_t>(NumHi, 1), N});
  Tensor Centers({std::max<int64_t>(NumBoxes, 1), N});
  Tensor Radii({std::max<int64_t>(NumBoxes, 1), N});

  parallelFor(NumRegions, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I) {
      const auto &R = Regions[static_cast<size_t>(I)];
      if (R.Kind == RegionKind::Curve) {
        std::copy(R.Coeffs.data(), R.Coeffs.data() + N,
                  A0Rows.data() + A0At[static_cast<size_t>(I)] * N);
        for (int64_t D = 1; D <= R.degree(); ++D)
          std::copy(R.Coeffs.data() + D * N, R.Coeffs.data() + (D + 1) * N,
                    HiRows.data() +
                        (HiAt[static_cast<size_t>(I)] + D - 1) * N);
      } else {
        std::copy(R.Center.data(), R.Center.data() + N,
                  Centers.data() + BoxAt[static_cast<size_t>(I)] * N);
        std::copy(R.Radius.data(), R.Radius.data() + N,
                  Radii.data() + BoxAt[static_cast<size_t>(I)] * N);
      }
    }
  });

  Tensor NewA0, NewHi, NewCenters, NewRadii;
  if (FuseRelu) {
    // Fused Linear->ReLU: every plane set takes one streaming pass over
    // the weight matrix, and the interval ReLU hits the box rows while
    // they are still cache-hot. Each step is bit-identical to the unfused
    // sequence (applyAffine / applyLinear / applyToBox[Sound], reluBox at
    // the next layer) — see the kernel contracts in tensor/ops.h.
    const Tensor &Wt = FuseRelu->transposedWeight();
    const Tensor &Bias = FuseRelu->bias();
    if (NumA0 > 0)
      NewA0 = matmulTransTBias(A0Rows, Wt, Bias);
    if (NumHi > 0)
      NewHi = matmul(HiRows, Wt);
    if (NumBoxes > 0) {
      if (soundRoundingEnabled()) {
        // applyToBoxSound, fused: the magnitude plane |c| + r rides the
        // same weight stream, and the bias image of a zero input is the
        // bias itself (a zero dot product is +0.0 under round-to-nearest
        // and +-0.0 + b has the same absolute value as b), so the
        // separate zero-input box transform disappears entirely.
        Tensor Mags({NumBoxes, N});
        const double *Cd = Centers.data();
        const double *Rd = Radii.data();
        double *Md = Mags.data();
        parallelFor(NumBoxes * N, [&](int64_t Begin, int64_t End) {
          for (int64_t I = Begin; I < End; ++I)
            Md[I] = fp::addUp(std::fabs(Cd[I]), Rd[I]);
        });
        Tensor NewMags;
        fusedBoxAffineTransT(Centers, Radii, &Mags, Wt, Bias, NewCenters,
                             NewRadii, &NewMags);
        const double Gamma =
            fp::accumulationBound(FuseRelu->accumulationDepth());
        const double *Biasd = Bias.data();
        const double *NMall = NewMags.data();
        double *NRall = NewRadii.data();
        const int64_t OutF = NewRadii.dim(1);
        parallelFor(NumBoxes, [&](int64_t Begin, int64_t End) {
          for (int64_t Row = Begin; Row < End; ++Row) {
            double *NR = NRall + Row * OutF;
            const double *NM = NMall + Row * OutF;
            for (int64_t J = 0; J < OutF; ++J)
              NR[J] = fp::addUp(
                  NR[J],
                  fp::mulUp(Gamma, fp::addUp(NM[J], std::fabs(Biasd[J]))));
          }
        });
      } else {
        fusedBoxAffineTransT(Centers, Radii, nullptr, Wt, Bias, NewCenters,
                             NewRadii, nullptr);
      }
      reluBoxRows(NewCenters, NewRadii);
    }
  } else {
    if (NumA0 > 0)
      NewA0 = activationsToRows(
          L.applyAffine(rowsToActivations(A0Rows, InShape)));
    if (NumHi > 0)
      NewHi = activationsToRows(
          L.applyLinear(rowsToActivations(HiRows, InShape)));
    if (NumBoxes > 0) {
      Tensor C = rowsToActivations(Centers, InShape);
      Tensor Rr = rowsToActivations(Radii, InShape);
      if (soundRoundingEnabled())
        L.applyToBoxSound(C, Rr);
      else
        L.applyToBox(C, Rr);
      NewCenters = activationsToRows(C);
      NewRadii = activationsToRows(Rr);
    }
  }

  const int64_t OutN = NumA0 > 0   ? NewA0.dim(1)
                       : NumBoxes > 0 ? NewCenters.dim(1)
                                      : N;
  parallelFor(NumRegions, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I) {
      auto &R = Regions[static_cast<size_t>(I)];
      if (R.Kind == RegionKind::Curve) {
        const int64_t Degree = R.degree();
        const int64_t IA0 = A0At[static_cast<size_t>(I)];
        const int64_t IHi = HiAt[static_cast<size_t>(I)];
        Tensor Coeffs({Degree + 1, OutN});
        std::copy(NewA0.data() + IA0 * OutN, NewA0.data() + (IA0 + 1) * OutN,
                  Coeffs.data());
        for (int64_t D = 1; D <= Degree; ++D)
          std::copy(NewHi.data() + (IHi + D - 1) * OutN,
                    NewHi.data() + (IHi + D) * OutN,
                    Coeffs.data() + D * OutN);
        R.Coeffs = std::move(Coeffs);
      } else {
        const int64_t IBox = BoxAt[static_cast<size_t>(I)];
        Tensor C({1, OutN}), Rr({1, OutN});
        std::copy(NewCenters.data() + IBox * OutN,
                  NewCenters.data() + (IBox + 1) * OutN, C.data());
        std::copy(NewRadii.data() + IBox * OutN,
                  NewRadii.data() + (IBox + 1) * OutN, Rr.data());
        R.Center = std::move(C);
        R.Radius = std::move(Rr);
      }
    }
  });
}

/// Interval ReLU on a box region, in place.
void reluBox(Region &Box) {
  const int64_t N = Box.dim();
  if (soundRoundingEnabled()) {
    // Endpoints rounded outward; the re-centered box keeps containing
    // [Lo, Hi] via the directed-up radius (Interval::toCenterRadius).
    for (int64_t J = 0; J < N; ++J) {
      const Interval Clamped =
          Interval(fp::subDown(Box.Center[J], Box.Radius[J]),
                   fp::addUp(Box.Center[J], Box.Radius[J]))
              .relu();
      Clamped.toCenterRadius(Box.Center[J], Box.Radius[J]);
    }
    return;
  }
  for (int64_t J = 0; J < N; ++J) {
    const double Lo = std::max(Box.Center[J] - Box.Radius[J], 0.0);
    const double Hi = std::max(Box.Center[J] + Box.Radius[J], 0.0);
    Box.Center[J] = 0.5 * (Lo + Hi);
    Box.Radius[J] = 0.5 * (Hi - Lo);
  }
}

/// Exact ReLU on a curve region: split at every component zero crossing,
/// then mask each piece by the per-component sign at its midpoint.
/// NumSplits is a plain per-call counter so the function can run on pool
/// workers; the caller folds it into PropagateStats in region order.
void reluCurve(const Region &Curve, const PropagateConfig &Config,
               std::vector<Region> &Out, int64_t &NumSplits) {
  GENPROVE_SPAN("relu_split");
  const int64_t N = Curve.dim();
  std::vector<double> Cuts;
  Cuts.push_back(Curve.T0);
  Cuts.push_back(Curve.T1);
  for (int64_t J = 0; J < N; ++J)
    curveComponentRoots(Curve, J, Cuts);
  std::sort(Cuts.begin(), Cuts.end());
  Cuts.erase(std::unique(Cuts.begin(), Cuts.end(),
                         [&](double A, double B) {
                           return B - A < Config.SplitEps;
                         }),
             Cuts.end());
  // Guard the boundaries after deduplication: never lose the piece.
  if (Cuts.size() == 1)
    Cuts.push_back(Curve.T1);
  Cuts.front() = Curve.T0;
  Cuts.back() = Curve.T1;

  const int64_t Degree = Curve.degree();
  for (size_t I = 0; I + 1 < Cuts.size(); ++I) {
    const double T0 = Cuts[I];
    const double T1 = Cuts[I + 1];
    const double Tm = 0.5 * (T0 + T1);
    Region Piece;
    Piece.Kind = RegionKind::Curve;
    Piece.Query = Curve.Query;
    Piece.T0 = T0;
    Piece.T1 = T1;
    Piece.Weight = evalCdf(Config.Cdf, T1) - evalCdf(Config.Cdf, T0);
    Piece.Coeffs = Tensor({Degree + 1, N});
    for (int64_t J = 0; J < N; ++J) {
      if (evalCurveComponent(Curve, Tm, J) > 0.0)
        for (int64_t D = 0; D <= Degree; ++D)
          Piece.Coeffs.at(D, J) = Curve.Coeffs.at(D, J);
      // else: all coefficients stay zero — the component is clamped.
    }
    Out.push_back(std::move(Piece));
  }
  NumSplits += static_cast<int64_t>(Cuts.size()) - 2;
}

/// Collapse the whole state to one interval box (the FullBox rung). The
/// box covers every region and carries their total mass, so the lift is a
/// sound widening; propagating it costs two nodes per layer.
void liftToFullBox(std::vector<Region> &Regions) {
  if (Regions.empty())
    return;
  Region Acc;
  bool Have = false;
  for (Region &R : Regions) {
    Region B = R.Kind == RegionKind::Box ? std::move(R) : boundingBox(R);
    Acc = Have ? mergeBoxes(Acc, B) : std::move(B);
    Have = true;
  }
  Regions.clear();
  Regions.push_back(std::move(Acc));
}

} // namespace

uint64_t cacheSaltForConfig(const PropagateConfig &Config,
                            uint64_t CallerTag) {
  uint64_t H = hashing::hashU64(hashing::FnvOffset, CallerTag);
  H = hashing::hashDouble(H, Config.Relax.RelaxPercent);
  H = hashing::hashDouble(H, Config.Relax.ClusterK);
  H = hashing::hashU64(H, static_cast<uint64_t>(Config.Relax.NodeThreshold));
  H = hashing::hashU64(H, Config.EnableRelax ? 1 : 0);
  H = hashing::hashDouble(H, Config.SplitEps);
  H = hashing::hashU64(H, soundRoundingEnabled() ? 1 : 0);
  // Fused and unfused runs produce bit-identical states at every shared
  // boundary, but a fused run skips the stores at fused pair boundaries;
  // keeping the key spaces disjoint means a warm start can never land on
  // a boundary the other flavor would not have produced.
  H = hashing::hashU64(H, Config.FuseRelu ? 2 : 3);
  return H;
}

std::vector<Region> propagateRegions(const std::vector<const Layer *> &Layers,
                                     const Shape &InputShape,
                                     std::vector<Region> Regions,
                                     const PropagateConfig &Config,
                                     DeviceMemoryModel &Memory,
                                     PropagateStats &Stats) {
  GENPROVE_SPAN("propagate");
  // Registered once; add() is a no-op while metrics are disabled.
  static Counter &SplitsCtr =
      MetricsRegistry::global().counter("propagate.splits");
  static Counter &BoxedCtr =
      MetricsRegistry::global().counter("propagate.boxed");
  static Counter &OomCtr = MetricsRegistry::global().counter("propagate.oom");
  static Counter &DegradedCtr =
      MetricsRegistry::global().counter("propagate.degraded");
  static Counter &FallbackCtr =
      MetricsRegistry::global().counter("propagate.fallback_box");
  static Counter &RollbackCtr =
      MetricsRegistry::global().counter("propagate.rollbacks");
  static Counter &DeadlineCtr =
      MetricsRegistry::global().counter("propagate.deadline_hits");
  static Counter &QuarantineCtr =
      MetricsRegistry::global().counter("propagate.quarantined");
  static Histogram &LayerSecondsHist =
      MetricsRegistry::global().histogram("propagate.layer_seconds");
  static Counter &CacheWarmCtr =
      MetricsRegistry::global().counter("cache.warm_layers");

  const ResilienceConfig &Res = Config.Resilience;
  const bool Resilient = Res.Enabled;
  if (Res.Faults)
    Res.Faults->arm(Memory);
  // Kernel fusion is silently disabled on resilient or fault-injected
  // runs: their checkpoint/rollback machinery assumes every layer
  // boundary holds an un-advanced state, and a fused pair's boundary
  // state has its boxes already rectified (interval ReLU is not
  // idempotent bitwise). The same gate keeps the propagation cache out of
  // such runs, for the same reason.
  const bool Fusing = Config.FuseRelu && !Resilient && !Res.Faults;
  // True while the state sits at a fused Linear->ReLU pair boundary: the
  // boxes are already rectified, so the upcoming ReLU must skip them.
  bool FusedPrevAffine = false;

  // Stats may arrive pre-populated (merged analyses); count only the
  // deltas produced by this call.
  const int64_t Splits0 = Stats.NumSplits;
  const int64_t Boxed0 = Stats.NumBoxed;
  const int64_t Rollbacks0 = Stats.Rollbacks;
  const int64_t Fallback0 = Stats.FallbackBoxLayers;
  const int64_t Quarantined0 = Stats.QuarantinedRegions;
  const bool DeadlineHit0 = Stats.DeadlineHit;
  const int64_t CacheWarm0 = Stats.CacheWarmLayers;
  const auto FlushCounters = [&] {
    CacheWarmCtr.add(Stats.CacheWarmLayers - CacheWarm0);
    SplitsCtr.add(Stats.NumSplits - Splits0);
    BoxedCtr.add(Stats.NumBoxed - Boxed0);
    OomCtr.add(Stats.OutOfMemory ? 1 : 0);
    DegradedCtr.add(Stats.Degraded ? 1 : 0);
    RollbackCtr.add(Stats.Rollbacks - Rollbacks0);
    FallbackCtr.add(Stats.FallbackBoxLayers - Fallback0);
    QuarantineCtr.add(Stats.QuarantinedRegions - Quarantined0);
    DeadlineCtr.add(Stats.DeadlineHit && !DeadlineHit0 ? 1 : 0);
  };

  // Deadline clock: injected test clock if provided, wall clock otherwise.
  Timer WallClock;
  const double ClockStart = Res.Clock ? Res.Clock() : 0.0;
  const auto Elapsed = [&] {
    return Res.Clock ? Res.Clock() - ClockStart : WallClock.seconds();
  };
  const auto DeadlineExpired = [&] {
    return Resilient && Res.DeadlineSeconds > 0.0 &&
           Elapsed() >= Res.DeadlineSeconds;
  };

  // The highest rung reached so far; FullBox is sticky for the rest of
  // the pipeline.
  DegradeRung RunRung = DegradeRung::None;
  const auto Degrade = [&](DegradeRung To) {
    if (static_cast<uint8_t>(To) > static_cast<uint8_t>(RunRung))
      RunRung = To;
    if (static_cast<uint8_t>(To) > static_cast<uint8_t>(Stats.Rung))
      Stats.Rung = To;
    Stats.Degraded = true;
  };

  // Drop non-finite regions, accounting their mass so bound computations
  // can widen soundly. Only active in resilient mode.
  const auto Quarantine = [&](std::vector<Region> &Rs) {
    if (!Resilient || !Res.DetectNonFinite)
      return;
    const size_t Before = Rs.size();
    size_t Kept = 0;
    for (size_t I = 0; I < Rs.size(); ++I) {
      if (regionIsFinite(Rs[I])) {
        if (Kept != I)
          Rs[Kept] = std::move(Rs[I]);
        ++Kept;
      } else {
        // A non-finite weight means the mass itself is unknown: assume the
        // worst (the entire unit of probability) to stay sound.
        Stats.QuarantinedMass += std::isfinite(Rs[I].Weight)
                                     ? std::max(Rs[I].Weight, 0.0)
                                     : 1.0;
        ++Stats.QuarantinedRegions;
        Stats.Degraded = true;
      }
    }
    Rs.resize(Kept);
    if (Kept < Before && logEnabled())
      EventLog::global().emit(
          LogLevel::Warn, "propagate.quarantine",
          {{"regions", static_cast<int64_t>(Before - Kept)},
           {"mass", Stats.QuarantinedMass}});
  };

  Shape CurShape = InputShape;
  Quarantine(Regions);
  if (Resilient && Res.StartAtFullBox) {
    // The caller asked for the interval-box rung up front (last-resort
    // shard retries): lift before the initial charge so the whole
    // pipeline runs budget-exempt host interval arithmetic.
    liftToFullBox(Regions);
    Degrade(DegradeRung::FullBox);
  }

  // Propagation-cache warm start. Only non-resilient, fault-free runs
  // are eligible: a resilient run's intermediate states depend on the
  // memory budget (rollbacks, local boxing), not just the inputs, so
  // they are not a pure function of the key chain.
  const bool CacheActive = Config.Cache && !Resilient && !Res.Faults &&
                           Config.Cache->enabled();
  std::vector<uint64_t> Chain;
  size_t WarmDepth = 0;
  size_t RunPeakBytes = 0; // peak device charge of the layers run so far
  if (CacheActive) {
    Chain = PropagationCache::chainKeys(Config.CacheSalt, InputShape,
                                        Regions, Layers);
    std::vector<Region> WarmState;
    Shape WarmShape;
    size_t WarmPeak = 0;
    WarmDepth =
        Config.Cache->lookupDeepest(Chain, WarmState, WarmShape, WarmPeak);
    if (WarmDepth > 0) {
      // Replay the skipped prefix's peak device charge as one charge: the
      // peak of the cold run's monotone charge sequence is its maximum,
      // so budget exhaustion (and the peak gauge) behaves exactly as a
      // cold run's would.
      if (!Memory.charge(WarmPeak)) {
        Stats.OutOfMemory = true;
        FlushCounters();
        return {};
      }
      Regions = std::move(WarmState);
      CurShape = WarmShape;
      RunPeakBytes = WarmPeak;
      Stats.CacheWarmLayers += static_cast<int64_t>(WarmDepth);
    }
  }

  // Per-query memoization for batched runs: when a cold input state
  // carries several Query tags, each query's slice of the final boundary
  // is bit-identical to a solo propagation of that query (the batching
  // contract), so it is also stored under the query's own solo key chain
  // — with a per-query peak tracked from the per-boundary node counts,
  // which by the same contract equals the solo run's charge sequence
  // exactly (OOM fidelity is preserved, not approximated). Repeated
  // queries then warm-start solo even when they arrive inside
  // differently-composed batches. Warm-started joint runs skip this: the
  // per-query peaks of the skipped prefix are not observable.
  struct QueryMemo {
    int32_t Tag = 0;
    uint64_t FinalKey = 0;
    size_t PeakBytes = 0;
  };
  std::vector<QueryMemo> QueryMemos;
  if (CacheActive && WarmDepth == 0) {
    std::vector<int32_t> Tags;
    for (const Region &R : Regions)
      if (std::find(Tags.begin(), Tags.end(), R.Query) == Tags.end())
        Tags.push_back(R.Query);
    if (Tags.size() > 1) {
      for (const int32_t Tag : Tags) {
        std::vector<Region> Group;
        for (const Region &R : Regions)
          if (R.Query == Tag) {
            Group.push_back(R);
            Group.back().Query = 0; // solo runs carry the default tag
          }
        QueryMemo M;
        M.Tag = Tag;
        M.FinalKey = PropagationCache::chainKeys(Config.CacheSalt,
                                                 InputShape, Group, Layers)
                         .back();
        M.PeakBytes = stateBytes(totalNodes(Group), InputShape.numel());
        QueryMemos.push_back(M);
      }
    }
  }

  if (WarmDepth == 0) {
    const int64_t Nodes = totalNodes(Regions);
    const int64_t Dim = Regions.empty() ? 0 : Regions.front().dim();
    RunPeakBytes = stateBytes(Nodes, Dim);
    if (!Resilient) {
      if (!Memory.chargeState(Nodes, Dim)) {
        Stats.OutOfMemory = true;
        FlushCounters();
        return {};
      }
    } else if (!Memory.tryChargeState(Nodes, Dim)) {
      // Even the input does not fit: coarsen it in place before layer 0.
      const int64_t FitNodes =
          Dim > 0 && Memory.budgetBytes() > 0
              ? static_cast<int64_t>(Memory.budgetBytes() /
                                     (static_cast<size_t>(Dim) *
                                      sizeof(double)))
              : Nodes / 2;
      boxLowestMassRegions(Regions, std::max<int64_t>(FitNodes, 2));
      Degrade(DegradeRung::LocalBox);
      if (!Memory.tryChargeState(totalNodes(Regions), Dim)) {
        liftToFullBox(Regions);
        Degrade(DegradeRung::FullBox);
        // The FullBox rung is exempt from the device budget: it models
        // spilling to host interval arithmetic, which always fits.
        (void)Memory.tryChargeState(totalNodes(Regions), Dim);
      }
    }
  }

  for (size_t Li = WarmDepth; Li < Layers.size(); ++Li) {
    const Layer *L = Layers[Li];
    // Refresh the liveness digest unconditionally (one relaxed store —
    // cheaper than branching on a flag) so the worker heartbeat thread
    // always reports the layer being worked on.
    RunLiveness::global().CurrentLayer.store(static_cast<int64_t>(Li),
                                             std::memory_order_relaxed);
    bool FullBoxActive = RunRung == DegradeRung::FullBox;
    if (Res.Faults)
      Res.Faults->beginLayer(static_cast<int64_t>(Li), FullBoxActive);
    if (!FullBoxActive && DeadlineExpired()) {
      // Out of time: lift the remaining pipeline to interval propagation.
      Quarantine(Regions);
      liftToFullBox(Regions);
      Degrade(DegradeRung::FullBox);
      Stats.DeadlineHit = true;
      if (logEnabled())
        EventLog::global().emit(LogLevel::Warn, "propagate.deadline",
                                {{"layer", static_cast<int64_t>(Li)},
                                 {"elapsed_s", Elapsed()}});
      FullBoxActive = true;
    }
    if (FullBoxActive)
      ++Stats.FallbackBoxLayers;

    // Checkpoint the state entering this layer; an OOM rolls back to here
    // and coarsens instead of restarting from layer 0. Host-side only —
    // the simulated device never holds it (a real deployment would spill
    // the checkpoint to host RAM).
    std::vector<Region> Checkpoint;
    if (Resilient && !FullBoxActive)
      Checkpoint = Regions;

    int64_t LayerRollbacks = 0;
    DegradeRung LayerRung =
        FullBoxActive ? DegradeRung::FullBox : DegradeRung::None;

    // Fuse this layer with the next when it is a Linear feeding a ReLU
    // (Fusing implies non-resilient, so FullBox can never be active here).
    const Linear *FuseLin =
        Fusing && L->kind() == Layer::Kind::Linear &&
                Li + 1 < Layers.size() &&
                Layers[Li + 1]->kind() == Layer::Kind::ReLU
            ? static_cast<const Linear *>(L)
            : nullptr;

    for (;;) { // Retries this layer only; predecessors are never re-run.
      LayerRecord Rec;
      Rec.Index = static_cast<int64_t>(Li);
      Rec.Kind = layerKindName(L->kind());
      Rec.RegionsIn = static_cast<int64_t>(Regions.size());
      Rec.NodesIn = totalNodes(Regions);
      const int64_t LayerSplits0 = Stats.NumSplits;
      Timer LayerClock;
      GENPROVE_SPAN(Rec.Kind);

      // Relaxation fires right before convolutional layers (Section 3.1).
      const bool IsConvolutional = L->kind() == Layer::Kind::Conv2d ||
                                   L->kind() == Layer::Kind::ConvTranspose2d;
      if (Config.EnableRelax && IsConvolutional) {
        GENPROVE_SPAN("relax");
        const int64_t Before = static_cast<int64_t>(Regions.size());
        relaxRegions(Regions, Config.Relax);
        Rec.Boxed = Before - static_cast<int64_t>(Regions.size());
        Stats.NumBoxed += Rec.Boxed;
      }

      Shape NextShape = CurShape;
      bool ChargeFailed = false;
      if (L->isAffine()) {
        applyAffineLayer(*L, CurShape, Regions, FuseLin);
        NextShape = L->outputShape(CurShape);
      } else {
        // Exact ReLU splitting is independent per region, so the split
        // computation fans out over the pool in fixed mega-chunks; the
        // memory-model charges are then replayed serially in region
        // order. The replay issues exactly the same charge sequence (one
        // cumulative charge per region) as the old serial loop, so OOM
        // points, fault-injection interceptor firings, peak bytes and
        // per-layer telemetry are bit-identical for any thread count.
        // The chunk bound keeps host allocation past an OOM point to at
        // most one mega-chunk of split pieces.
        constexpr int64_t RegionChunk = 4096;
        std::vector<Region> Next;
        Next.reserve(Regions.size());
        int64_t RunningNodes = 0;
        const int64_t NumRegions = static_cast<int64_t>(Regions.size());
        for (int64_t CBegin = 0; CBegin < NumRegions && !ChargeFailed;
             CBegin += RegionChunk) {
          const int64_t CCount =
              std::min(NumRegions - CBegin, RegionChunk);
          std::vector<std::vector<Region>> Outs(
              static_cast<size_t>(CCount));
          std::vector<int64_t> Splits(static_cast<size_t>(CCount), 0);
          std::vector<int64_t> Deltas(static_cast<size_t>(CCount), 0);
          parallelFor(CCount, [&](int64_t Begin, int64_t End) {
            for (int64_t I = Begin; I < End; ++I) {
              Region &R = Regions[static_cast<size_t>(CBegin + I)];
              auto &Out = Outs[static_cast<size_t>(I)];
              if (R.Kind == RegionKind::Box) {
                // A fused predecessor already rectified the boxes; the
                // charge accounting below is unchanged either way.
                if (!FusedPrevAffine)
                  reluBox(R);
                Deltas[static_cast<size_t>(I)] = 2;
                Out.push_back(std::move(R));
              } else {
                const int64_t NodesPerPiece = R.degree() + 1;
                reluCurve(R, Config, Out, Splits[static_cast<size_t>(I)]);
                Deltas[static_cast<size_t>(I)] =
                    static_cast<int64_t>(Out.size()) * NodesPerPiece;
              }
            }
          });
          // Serial charge replay: identical cumulative totals and call
          // count to the pre-parallel per-region loop.
          for (int64_t I = 0; I < CCount && !ChargeFailed; ++I) {
            RunningNodes += Deltas[static_cast<size_t>(I)];
            Stats.NumSplits += Splits[static_cast<size_t>(I)];
            for (Region &P : Outs[static_cast<size_t>(I)])
              Next.push_back(std::move(P));
            const bool Ok =
                Resilient
                    ? Memory.tryChargeState(RunningNodes,
                                            CurShape.numel()) ||
                          FullBoxActive
                    : Memory.chargeState(RunningNodes, CurShape.numel());
            if (!Ok) {
              if (!Resilient) {
                Stats.OutOfMemory = true;
                Stats.OomLayer = static_cast<int64_t>(Li);
                Rec.RegionsOut = static_cast<int64_t>(Next.size());
                Rec.NodesOut = RunningNodes;
                Rec.Splits = Stats.NumSplits - LayerSplits0;
                Rec.ChargedBytes =
                    stateBytes(RunningNodes, CurShape.numel());
                Rec.Seconds = LayerClock.seconds();
                Stats.Layers.push_back(Rec);
                FlushCounters();
                return {};
              }
              ChargeFailed = true;
            }
          }
        }
        if (!ChargeFailed)
          Regions = std::move(Next);
      }

      int64_t Nodes = 0;
      if (!ChargeFailed) {
        Nodes = totalNodes(Regions);
        const bool Ok =
            Resilient
                ? Memory.tryChargeState(Nodes, NextShape.numel()) ||
                      FullBoxActive
                : true; // legacy path charges after recording, below
        if (!Ok)
          ChargeFailed = true;
      }

      if (!ChargeFailed) {
        // Layer committed. Inject / detect non-finite values on the
        // committed state, then record the timeline row.
        if (Res.Faults &&
            Res.Faults->shouldPoison(static_cast<int64_t>(Li)))
          Res.Faults->poisonRegions(Regions);
        Quarantine(Regions);
        CurShape = NextShape;
        Nodes = totalNodes(Regions);
        Stats.MaxRegions =
            std::max(Stats.MaxRegions, static_cast<int64_t>(Regions.size()));
        Stats.MaxNodes = std::max(Stats.MaxNodes, Nodes);
        Rec.RegionsOut = static_cast<int64_t>(Regions.size());
        Rec.NodesOut = Nodes;
        Rec.Splits = Stats.NumSplits - LayerSplits0;
        Rec.ChargedBytes = stateBytes(Nodes, CurShape.numel());
        Rec.Seconds = LayerClock.seconds();
        Rec.Rung = LayerRung;
        Rec.Rollbacks = LayerRollbacks;
        RunLiveness::global().StateBytes.store(Rec.ChargedBytes,
                                               std::memory_order_relaxed);
        LayerSecondsHist.record(Rec.Seconds);
        Stats.Layers.push_back(Rec);
        if (!Resilient &&
            !Memory.chargeState(Nodes, CurShape.numel())) {
          Stats.OutOfMemory = true;
          Stats.OomLayer = static_cast<int64_t>(Li);
          FlushCounters();
          return {};
        }
        if (CacheActive) {
          // CacheActive implies a non-resilient, fault-free run, so every
          // committed state is clean (no rung fired, nothing quarantined)
          // and safe to memoize.
          RunPeakBytes = std::max(RunPeakBytes, Rec.ChargedBytes);
          // A fused pair's boundary state is half-advanced (boxes already
          // rectified) and must never seed a warm start; peak tracking
          // still runs — node counts are identical fused or not.
          if (!FuseLin)
            Config.Cache->store(Chain[Li + 1], Regions, CurShape,
                                RunPeakBytes);
          if (!QueryMemos.empty()) {
            const int64_t Dim = CurShape.numel();
            for (QueryMemo &M : QueryMemos) {
              int64_t QueryNodes = 0;
              for (const Region &R : Regions)
                if (R.Query == M.Tag)
                  QueryNodes += R.nodes();
              M.PeakBytes = std::max(M.PeakBytes, stateBytes(QueryNodes, Dim));
            }
            if (Li + 1 == Layers.size()) {
              for (const QueryMemo &M : QueryMemos) {
                std::vector<Region> Split;
                for (const Region &R : Regions)
                  if (R.Query == M.Tag) {
                    Split.push_back(R);
                    Split.back().Query = 0;
                  }
                Config.Cache->store(M.FinalKey, Split, CurShape, M.PeakBytes);
              }
            }
          }
        }
        FusedPrevAffine = FuseLin != nullptr;
        break;
      }

      // --- Degradation ladder (resilient mode only from here) ---
      // Roll back to the checkpoint: only this layer is re-executed.
      ++Stats.Rollbacks;
      ++LayerRollbacks;
      if (logEnabled())
        EventLog::global().emit(LogLevel::Warn, "propagate.rollback",
                                {{"layer", static_cast<int64_t>(Li)},
                                 {"layer_rollbacks", LayerRollbacks}});
      Regions = Checkpoint;
      const bool LocalExhausted = LayerRollbacks > Res.MaxLayerRetries;
      bool Lifted = false;
      if (!LocalExhausted) {
        // Local coarsening, Appendix C style: each retry halves the node
        // target, starting from what the budget can actually hold.
        const int64_t Cur = totalNodes(Regions);
        const int64_t Dim =
            std::max(CurShape.numel(), NextShape.numel());
        int64_t FitNodes = Cur;
        if (Dim > 0 && Memory.budgetBytes() > 0)
          FitNodes = static_cast<int64_t>(
              Memory.budgetBytes() /
              (static_cast<size_t>(Dim) * sizeof(double)));
        int64_t Target = std::min(Cur, FitNodes);
        for (int64_t Halve = 0; Halve < LayerRollbacks; ++Halve)
          Target /= 2;
        if (Target < 4 || !boxLowestMassRegions(Regions, Target))
          Lifted = true; // nothing left to box locally
        else
          LayerRung = DegradeRung::LocalBox;
      } else {
        Lifted = true;
      }
      if (Lifted) {
        // Last rung: the rest of the pipeline runs on one interval box,
        // exempt from the device budget (host interval arithmetic).
        Quarantine(Regions);
        liftToFullBox(Regions);
        LayerRung = DegradeRung::FullBox;
        FullBoxActive = true;
        ++Stats.FallbackBoxLayers;
        Degrade(DegradeRung::FullBox);
        if (logEnabled())
          EventLog::global().emit(LogLevel::Warn, "propagate.fallback_box",
                                  {{"layer", static_cast<int64_t>(Li)}});
      } else {
        Degrade(DegradeRung::LocalBox);
      }
    }
  }
  FlushCounters();
  return Regions;
}

} // namespace genprove
