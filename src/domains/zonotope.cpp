//===- domains/zonotope.cpp -----------------------------------*- C++ -*-===//

#include "src/domains/zonotope.h"

#include "src/nn/linear.h"
#include "src/tensor/ops.h"
#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

Tensor reshapeRows(const Tensor &Rows, const Shape &SampleShape) {
  std::vector<int64_t> Dims = SampleShape.dims();
  Dims[0] = Rows.dim(0);
  return Rows.reshaped(Shape(Dims));
}

Tensor flattenRows(const Tensor &Acts) {
  const int64_t K = Acts.dim(0);
  return Acts.reshaped({K, Acts.numel() / std::max<int64_t>(K, 1)});
}

/// Mutable zonotope state. Slack is a per-dimension interval error term
/// that is identically zero in the default round-to-nearest mode and
/// absorbs every rounding error of the affine/ReLU transformers when
/// sound rounding is on (the generator count the memory model sees is
/// unchanged).
struct ZonoState {
  Tensor Center; ///< [1, N]
  Tensor Gens;   ///< [G, N]
  Tensor Slack;  ///< [1, N]
};

ZonoState initState(const Tensor &Start, const Tensor &End) {
  const int64_t N = Start.numel();
  ZonoState St{Tensor({1, N}), Tensor({1, N}), Tensor({1, N})};
  const bool Sound = soundRoundingEnabled();
  for (int64_t J = 0; J < N; ++J) {
    St.Center[J] = 0.5 * (Start[J] + End[J]);
    St.Gens.at(0, J) = 0.5 * (End[J] - Start[J]);
    if (Sound)
      // Covers the rounding of midpoint/half-difference and the deviation
      // of any double-evaluated point s + t*(e-s) from the exact segment.
      St.Slack[J] = fp::mulUp(
          8.0 * DBL_EPSILON,
          fp::addUp(std::fabs(Start[J]), std::fabs(End[J])));
  }
  return St;
}

/// Directed-up column sums of |Gens| (plain accumulation when sound
/// rounding is off).
Tensor absColumnSums(const Tensor &Gens) {
  const int64_t G = Gens.dim(0);
  const int64_t N = Gens.dim(1);
  const bool Sound = soundRoundingEnabled();
  Tensor Sums({1, N});
  for (int64_t J = 0; J < N; ++J) {
    double Acc = 0.0;
    for (int64_t Row = 0; Row < G; ++Row) {
      const double A = std::fabs(Gens.at(Row, J));
      Acc = Sound ? fp::addUp(Acc, A) : Acc + A;
    }
    Sums[J] = Acc;
  }
  return Sums;
}

/// One affine layer on any number of per-query states at once. All
/// centers, all generator rows, and (in sound mode) all magnitude/slack
/// rows are stacked into single production-sized kernel calls; every
/// kernel is row-independent (fixed ascending-k accumulation per output
/// element, fp-contract off), so each state's rows come out bit-identical
/// to a one-state call. The center/generator kernels are the unchanged
/// round-to-nearest paths; in sound mode the slack additionally absorbs a
/// rigorous bound on all of their rounding errors.
/// With \p Fuse (the layer is known Linear, feeding a ReLU) the
/// center/slack/magnitude planes run through the fused single-pass weight
/// kernel (tensor/ops.h) instead of four separate box/affine calls; every
/// output element is bit-identical either way.
void applyAffineToStates(const Layer *L, const Shape &CurShape,
                         std::vector<ZonoState> &States, bool Fuse) {
  const bool Sound = soundRoundingEnabled();
  const int64_t K = static_cast<int64_t>(States.size());
  const int64_t N = States.front().Center.numel();

  Tensor Centers({K, N});
  for (int64_t I = 0; I < K; ++I)
    std::copy(States[I].Center.data(), States[I].Center.data() + N,
              Centers.data() + I * N);

  int64_t SumG = 0;
  for (const ZonoState &St : States)
    SumG += St.Gens.dim(0);
  Tensor AllGens({SumG, N});
  {
    int64_t Row = 0;
    for (const ZonoState &St : States) {
      std::copy(St.Gens.data(), St.Gens.data() + St.Gens.numel(),
                AllGens.data() + Row * N);
      Row += St.Gens.dim(0);
    }
  }

  Tensor Mags, BiasImages, Slacks;
  // In the fused path the bias image of the zero-input box transform is
  // replaced by the bias vector itself (a zero dot product is +0.0 under
  // round-to-nearest, and |+-0.0 + b| == |b| bitwise), so the epilogue
  // reads the shared bias row instead of per-state bias images.
  const double *FusedBias = nullptr;
  if (Sound) {
    // Magnitude bound on any represented (or concretely forwarded) point:
    // |x| <= |c| + sum_g |g| + slack, per state.
    Mags = Tensor({K, N});
    Slacks = Tensor({K, N});
    for (int64_t I = 0; I < K; ++I) {
      const ZonoState &St = States[I];
      Tensor Mag = absColumnSums(St.Gens);
      for (int64_t J = 0; J < N; ++J)
        Mags.at(I, J) = fp::addUp(
            Mag[J], fp::addUp(std::fabs(St.Center[J]), St.Slack[J]));
      std::copy(St.Slack.data(), St.Slack.data() + N, Slacks.data() + I * N);
    }
  }

  if (Fuse) {
    const Linear *Lin = static_cast<const Linear *>(L);
    const Tensor &Wt = Lin->transposedWeight();
    const Tensor &Bias = Lin->bias();
    if (Sound) {
      // One weight stream produces the center images (against W) and the
      // slack and magnitude images (against |W|); bit-identical to the
      // two applyToBox calls plus applyAffine of the unfused path.
      Tensor NewCenters, NewSlacks, NewMags;
      fusedBoxAffineTransT(Centers, Slacks, &Mags, Wt, Bias, NewCenters,
                           NewSlacks, &NewMags);
      Centers = std::move(NewCenters);
      Slacks = std::move(NewSlacks);
      Mags = std::move(NewMags);
      FusedBias = Bias.data();
    } else {
      Centers = matmulTransTBias(Centers, Wt, Bias);
    }
    AllGens = matmul(AllGens, Wt);
  } else {
    if (Sound) {
      // One box application on zero centers yields the bias images and
      // |A| * Mag; a second one propagates the slacks themselves through
      // |A|.
      BiasImages = Tensor({K, N});
      {
        Tensor BiasActs = reshapeRows(BiasImages, CurShape);
        Tensor MagActs = reshapeRows(Mags, CurShape);
        L->applyToBox(BiasActs, MagActs);
        BiasImages = flattenRows(BiasActs);
        Mags = flattenRows(MagActs);
      }
      {
        Tensor SlackCenters = Centers.clone();
        Tensor CenterActs = reshapeRows(SlackCenters, CurShape);
        Tensor SlackActs = reshapeRows(Slacks, CurShape);
        L->applyToBox(CenterActs, SlackActs);
        Slacks = flattenRows(SlackActs);
      }
    }

    Centers = flattenRows(L->applyAffine(reshapeRows(Centers, CurShape)));
    AllGens = flattenRows(L->applyLinear(reshapeRows(AllGens, CurShape)));
  }

  // gamma * (|A| Mag + |b|) bounds, with a wide margin, the sum of the
  // rounding errors of the center map, every generator row, the slack
  // propagation and a concrete forward pass of a represented point.
  const double Gamma =
      Sound ? fp::accumulationBound(L->accumulationDepth()) : 0.0;
  const int64_t OutN = Centers.dim(1);
  int64_t Row = 0;
  for (int64_t I = 0; I < K; ++I) {
    ZonoState &St = States[I];
    const int64_t G = St.Gens.dim(0);
    Tensor NewCenter({1, OutN});
    std::copy(Centers.data() + I * OutN, Centers.data() + (I + 1) * OutN,
              NewCenter.data());
    Tensor NewGens({G, OutN});
    std::copy(AllGens.data() + Row * OutN, AllGens.data() + (Row + G) * OutN,
              NewGens.data());
    Row += G;
    Tensor NewSlack({1, OutN}); // identically zero in RN mode
    if (Sound)
      for (int64_t J = 0; J < OutN; ++J)
        NewSlack[J] = fp::addUp(
            Slacks.at(I, J),
            fp::mulUp(Gamma,
                      fp::addUp(Mags.at(I, J),
                                std::fabs(FusedBias
                                              ? FusedBias[J]
                                              : BiasImages.at(I, J)))));
    St.Center = std::move(NewCenter);
    St.Gens = std::move(NewGens);
    St.Slack = std::move(NewSlack);
  }
}

/// ReLU transformer on the state (both kinds). In sound mode the
/// pre-activation range is rounded outward and the lambda/mu rounding
/// error is folded into the slack.
void applyReluToState(ZonotopeKind Kind, ZonoState &St) {
  const bool Sound = soundRoundingEnabled();
  const int64_t Dim = St.Center.numel();
  const int64_t G = St.Gens.dim(0);
  std::vector<std::pair<int64_t, double>> Fresh; // (dim, coefficient)
  for (int64_t J = 0; J < Dim; ++J) {
    double Spread = Sound ? St.Slack[J] : 0.0;
    for (int64_t Row = 0; Row < G; ++Row) {
      const double A = std::fabs(St.Gens.at(Row, J));
      Spread = Sound ? fp::addUp(Spread, A) : Spread + A;
    }
    const double Lo = Sound ? fp::subDown(St.Center[J], Spread)
                            : St.Center[J] - Spread;
    const double Hi = Sound ? fp::addUp(St.Center[J], Spread)
                            : St.Center[J] + Spread;
    if (Hi <= 0.0) {
      St.Center[J] = 0.0;
      St.Slack[J] = 0.0;
      for (int64_t Row = 0; Row < G; ++Row)
        St.Gens.at(Row, J) = 0.0;
    } else if (Lo < 0.0) {
      if (Kind == ZonotopeKind::DeepZono) {
        // Minimal-area parallelogram: y = lambda*x + mu +- mu.
        const double Lambda = Hi / (Hi - Lo);
        const double Mu = -Lambda * Lo / 2.0;
        if (Sound) {
          // The parallelogram with the exact lambda*/mu* of this outward
          // [Lo, Hi] is sound; the computed lambda/mu deviate by a few
          // ULPs, as do the rescaled center/generators. All of it lands
          // in the slack.
          const double M = std::max(std::fabs(Lo), Hi);
          const double SumG = fp::subUp(Spread, St.Slack[J]);
          const double Inner = fp::addUp(
              std::fabs(Mu),
              fp::mulUp(Lambda,
                        fp::addUp(M, fp::addUp(std::fabs(St.Center[J]),
                                               SumG))));
          const double LambdaUp =
              fp::mulUp(Lambda, 1.0 + 8.0 * DBL_EPSILON);
          St.Slack[J] = fp::addUp(fp::mulUp(LambdaUp, St.Slack[J]),
                                  fp::mulUp(16.0 * DBL_EPSILON, Inner));
        }
        St.Center[J] = Lambda * St.Center[J] + Mu;
        for (int64_t Row = 0; Row < G; ++Row)
          St.Gens.at(Row, J) *= Lambda;
        Fresh.emplace_back(J, Mu);
      } else {
        // AI2-style: forget the affine form, use [0, Hi]. In sound mode
        // the fresh coefficient rounds up so [c - f, c + f] = [0, 2f]
        // still covers [0, Hi]; the slack is consumed by Hi.
        const double Half = Sound ? fp::mulUp(0.5, Hi) : Hi / 2.0;
        St.Center[J] = Half;
        St.Slack[J] = 0.0;
        for (int64_t Row = 0; Row < G; ++Row)
          St.Gens.at(Row, J) = 0.0;
        Fresh.emplace_back(J, Half);
      }
    }
    // Lo >= 0: identity (exact; slack carries over unchanged).
  }
  if (!Fresh.empty()) {
    Tensor NewGens({G + static_cast<int64_t>(Fresh.size()), Dim});
    std::copy(St.Gens.data(), St.Gens.data() + St.Gens.numel(),
              NewGens.data());
    for (size_t K = 0; K < Fresh.size(); ++K)
      NewGens.at(G + static_cast<int64_t>(K), Fresh[K].first) =
          Fresh[K].second;
    St.Gens = std::move(NewGens);
  }
}

/// Propagate many segments through the pipeline as one joint state.
/// Returns false on OOM; the per-layer device charge is the sum of every
/// state's charge, since the joint state is resident at once.
/// Peak/generator telemetry accumulates into Result.
bool propagateZonotopeBatch(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const std::vector<std::pair<Tensor, Tensor>> &Segments, ZonotopeKind Kind,
    DeviceMemoryModel &Memory, std::vector<ZonoState> &States,
    ConvexResult &Result, bool Fuse) {
  States.clear();
  States.reserve(Segments.size());
  for (const auto &Seg : Segments)
    States.push_back(initState(Seg.first, Seg.second));
  Shape CurShape = InputShape;
  // Telemetry + budget charge for a layer boundary. The fused path
  // consumes two layers per iteration but replays both boundaries'
  // charges (the pair boundary from pre-ReLU snapshots), so OOM points,
  // peak bytes and generator maxima match the unfused run exactly.
  auto ChargeRows = [&](int64_t Rows, int64_t MaxG, int64_t Numel) {
    Result.MaxGenerators = std::max(Result.MaxGenerators, MaxG);
    const bool Ok = Memory.chargeState(Rows, Numel);
    Result.PeakBytes = Memory.peakBytes();
    return Ok;
  };
  auto Charge = [&]() {
    int64_t Rows = 0;
    int64_t MaxG = 0;
    for (const ZonoState &St : States) {
      MaxG = std::max(MaxG, St.Gens.dim(0));
      Rows += St.Gens.dim(0) + 1;
    }
    return ChargeRows(Rows, MaxG, CurShape.numel());
  };
  if (!Charge())
    return false;
  const size_t NumLayers = Layers.size();
  for (size_t Li = 0; Li < NumLayers; ++Li) {
    const Layer *L = Layers[Li];
    if (L->isAffine()) {
      const bool FuseNext = Fuse && L->kind() == Layer::Kind::Linear &&
                            Li + 1 < NumLayers &&
                            Layers[Li + 1]->kind() == Layer::Kind::ReLU;
      applyAffineToStates(L, CurShape, States, FuseNext);
      CurShape = L->outputShape(CurShape);
      if (FuseNext) {
        // Snapshot the pair-boundary charge before the ReLU can add fresh
        // generator rows, then rectify while the states are hot.
        int64_t RowsPre = 0;
        int64_t MaxGPre = 0;
        for (const ZonoState &St : States) {
          MaxGPre = std::max(MaxGPre, St.Gens.dim(0));
          RowsPre += St.Gens.dim(0) + 1;
        }
        for (ZonoState &St : States)
          applyReluToState(Kind, St);
        if (!ChargeRows(RowsPre, MaxGPre, CurShape.numel()))
          return false;
        if (!Charge())
          return false;
        ++Li; // the ReLU layer was consumed by the fused step
        continue;
      }
    } else {
      for (ZonoState &St : States)
        applyReluToState(Kind, St);
    }
    if (!Charge())
      return false;
  }
  return true;
}

/// Propagate one segment (the batch-of-one special case; identical
/// charges, identical kernel calls). Returns false on OOM.
bool propagateZonotope(const std::vector<const Layer *> &Layers,
                       const Shape &InputShape, const Tensor &Start,
                       const Tensor &End, ZonotopeKind Kind,
                       DeviceMemoryModel &Memory, ZonoState &St,
                       ConvexResult &Result, bool Fuse) {
  std::vector<std::pair<Tensor, Tensor>> Segments;
  Segments.emplace_back(Start, End);
  std::vector<ZonoState> States;
  if (!propagateZonotopeBatch(Layers, InputShape, Segments, Kind, Memory,
                              States, Result, Fuse))
    return false;
  St = std::move(States.front());
  return true;
}

/// Spec tests on a zonotope: min/max of each halfspace functional, with
/// directed rounding (and the slack term) when sound rounding is on.
ProbBounds liftedBounds(const ZonoState &St, const OutputSpec &Spec) {
  const bool Sound = soundRoundingEnabled();
  bool Contained = true;
  bool Intersects = true;
  for (const auto &H : Spec.halfspaces()) {
    if (!Sound) {
      double Mid = H.Offset;
      for (int64_t J = 0; J < H.Normal.numel(); ++J)
        Mid += H.Normal[J] * St.Center[J];
      double Spread = 0.0;
      for (int64_t G = 0; G < St.Gens.dim(0); ++G) {
        double Dot = 0.0;
        for (int64_t J = 0; J < St.Gens.dim(1); ++J)
          Dot += H.Normal[J] * St.Gens.at(G, J);
        Spread += std::fabs(Dot);
      }
      if (Mid - Spread <= 0.0)
        Contained = false;
      if (Mid + Spread <= 0.0)
        Intersects = false;
      continue;
    }
    // Directed enclosure [MidLo, MidHi] of the center functional, plus an
    // upper bound on the spread (per-row dot enclosures and the slack).
    double MidLo = H.Offset, MidHi = H.Offset;
    double SpreadUp = 0.0;
    for (int64_t J = 0; J < H.Normal.numel(); ++J) {
      MidLo = fp::addDown(MidLo, fp::mulDown(H.Normal[J], St.Center[J]));
      MidHi = fp::addUp(MidHi, fp::mulUp(H.Normal[J], St.Center[J]));
      SpreadUp = fp::addUp(SpreadUp,
                           fp::mulUp(std::fabs(H.Normal[J]), St.Slack[J]));
    }
    for (int64_t G = 0; G < St.Gens.dim(0); ++G) {
      double DotLo = 0.0, DotHi = 0.0;
      for (int64_t J = 0; J < St.Gens.dim(1); ++J) {
        DotLo = fp::addDown(DotLo, fp::mulDown(H.Normal[J], St.Gens.at(G, J)));
        DotHi = fp::addUp(DotHi, fp::mulUp(H.Normal[J], St.Gens.at(G, J)));
      }
      SpreadUp = fp::addUp(SpreadUp, std::max(std::fabs(DotLo),
                                              std::fabs(DotHi)));
    }
    if (fp::subDown(MidLo, SpreadUp) <= 0.0)
      Contained = false;
    if (fp::addUp(MidHi, SpreadUp) <= 0.0)
      Intersects = false;
  }
  if (Contained)
    return {1.0, 1.0, false};
  if (!Intersects)
    return {0.0, 0.0, false};
  return {0.0, 1.0, false};
}

} // namespace

std::vector<ConvexResult>
analyzeZonotopeMulti(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape, const Tensor &Start,
                     const Tensor &End, const std::vector<OutputSpec> &Specs,
                     ZonotopeKind Kind, DeviceMemoryModel &Memory,
                     bool Fuse) {
  ConvexResult Result;
  ZonoState St;
  if (!propagateZonotope(Layers, InputShape, Start, End, Kind, Memory, St,
                         Result, Fuse)) {
    Result.Bounds = {0.0, 1.0, true};
    return std::vector<ConvexResult>(Specs.size(), Result);
  }
  std::vector<ConvexResult> Results;
  Results.reserve(Specs.size());
  for (const OutputSpec &Spec : Specs) {
    ConvexResult PerSpec = Result;
    PerSpec.Bounds = liftedBounds(St, Spec);
    Results.push_back(std::move(PerSpec));
  }
  return Results;
}

std::vector<std::vector<ConvexResult>>
analyzeZonotopeBatch(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape,
                     const std::vector<std::pair<Tensor, Tensor>> &Segments,
                     const std::vector<OutputSpec> &Specs, ZonotopeKind Kind,
                     DeviceMemoryModel &Memory, bool Fuse) {
  const size_t K = Segments.size();
  std::vector<std::vector<ConvexResult>> Out(K);
  if (K == 0)
    return Out;
  ConvexResult Joint;
  std::vector<ZonoState> States;
  if (!propagateZonotopeBatch(Layers, InputShape, Segments, Kind, Memory,
                              States, Joint, Fuse)) {
    // The joint state blew the budget: fall back to sequential
    // per-segment analyses, which see exactly what a caller-side loop
    // would (each segment charges the device on its own).
    for (size_t I = 0; I < K; ++I)
      Out[I] = analyzeZonotopeMulti(Layers, InputShape, Segments[I].first,
                                    Segments[I].second, Specs, Kind, Memory,
                                    Fuse);
    return Out;
  }
  for (size_t I = 0; I < K; ++I) {
    Out[I].reserve(Specs.size());
    for (const OutputSpec &Spec : Specs) {
      ConvexResult PerSpec = Joint;
      PerSpec.Bounds = liftedBounds(States[I], Spec);
      Out[I].push_back(std::move(PerSpec));
    }
  }
  return Out;
}

ConvexResult analyzeZonotope(const std::vector<const Layer *> &Layers,
                             const Shape &InputShape, const Tensor &Start,
                             const Tensor &End, const OutputSpec &Spec,
                             ZonotopeKind Kind, DeviceMemoryModel &Memory,
                             bool Fuse) {
  return analyzeZonotopeMulti(Layers, InputShape, Start, End, {Spec}, Kind,
                              Memory, Fuse)
      .front();
}

ZonotopeOutputBounds
zonotopeOutputBounds(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape, const Tensor &Start,
                     const Tensor &End, ZonotopeKind Kind,
                     DeviceMemoryModel &Memory, bool Fuse) {
  ZonotopeOutputBounds Out;
  ConvexResult Result;
  ZonoState St;
  if (!propagateZonotope(Layers, InputShape, Start, End, Kind, Memory, St,
                         Result, Fuse)) {
    Out.OutOfMemory = true;
    return Out;
  }
  const int64_t N = St.Center.numel();
  Out.Lo = Tensor({1, N});
  Out.Hi = Tensor({1, N});
  for (int64_t J = 0; J < N; ++J) {
    double Spread = St.Slack[J];
    for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row)
      Spread = fp::addUp(Spread, std::fabs(St.Gens.at(Row, J)));
    Out.Lo[J] = fp::subDown(St.Center[J], Spread);
    Out.Hi[J] = fp::addUp(St.Center[J], Spread);
  }
  return Out;
}

} // namespace genprove
