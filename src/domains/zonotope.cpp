//===- domains/zonotope.cpp -----------------------------------*- C++ -*-===//

#include "src/domains/zonotope.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

Tensor reshapeRows(const Tensor &Rows, const Shape &SampleShape) {
  std::vector<int64_t> Dims = SampleShape.dims();
  Dims[0] = Rows.dim(0);
  return Rows.reshaped(Shape(Dims));
}

Tensor flattenRows(const Tensor &Acts) {
  const int64_t K = Acts.dim(0);
  return Acts.reshaped({K, Acts.numel() / std::max<int64_t>(K, 1)});
}

/// Spec tests on a zonotope: min/max of each halfspace functional.
ProbBounds liftedBounds(const Tensor &Center, const Tensor &Gens,
                        const OutputSpec &Spec) {
  bool Contained = true;
  bool Intersects = true;
  for (const auto &H : Spec.halfspaces()) {
    double Mid = H.Offset;
    for (int64_t J = 0; J < H.Normal.numel(); ++J)
      Mid += H.Normal[J] * Center[J];
    double Spread = 0.0;
    for (int64_t G = 0; G < Gens.dim(0); ++G) {
      double Dot = 0.0;
      for (int64_t J = 0; J < Gens.dim(1); ++J)
        Dot += H.Normal[J] * Gens.at(G, J);
      Spread += std::fabs(Dot);
    }
    if (Mid - Spread <= 0.0)
      Contained = false;
    if (Mid + Spread <= 0.0)
      Intersects = false;
  }
  if (Contained)
    return {1.0, 1.0, false};
  if (!Intersects)
    return {0.0, 0.0, false};
  return {0.0, 1.0, false};
}

} // namespace

std::vector<ConvexResult>
analyzeZonotopeMulti(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape, const Tensor &Start,
                     const Tensor &End, const std::vector<OutputSpec> &Specs,
                     ZonotopeKind Kind, DeviceMemoryModel &Memory) {
  ConvexResult Result;
  const int64_t N = Start.numel();
  Tensor Center({1, N});
  Tensor Gens({1, N});
  for (int64_t J = 0; J < N; ++J) {
    Center[J] = 0.5 * (Start[J] + End[J]);
    Gens.at(0, J) = 0.5 * (End[J] - Start[J]);
  }

  Shape CurShape = InputShape;
  auto Charge = [&]() {
    Result.MaxGenerators = std::max(Result.MaxGenerators, Gens.dim(0));
    const bool Ok =
        Memory.chargeState(Gens.dim(0) + 1, CurShape.numel());
    Result.PeakBytes = Memory.peakBytes();
    return Ok;
  };
  auto OomResults = [&]() {
    Result.Bounds = {0.0, 1.0, true};
    return std::vector<ConvexResult>(Specs.size(), Result);
  };
  if (!Charge())
    return OomResults();

  for (const Layer *L : Layers) {
    if (L->isAffine()) {
      Center = flattenRows(L->applyAffine(reshapeRows(Center, CurShape)));
      Gens = flattenRows(L->applyLinear(reshapeRows(Gens, CurShape)));
      CurShape = L->outputShape(CurShape);
    } else {
      // ReLU: per-dimension case analysis. First pass decides the
      // transform and the fresh-error magnitude per crossing neuron while
      // the pre-ReLU bounds are still available; the second pass appends
      // the fresh generators.
      const int64_t Dim = Center.numel();
      const int64_t G = Gens.dim(0);
      std::vector<std::pair<int64_t, double>> Fresh; // (dim, coefficient)
      for (int64_t J = 0; J < Dim; ++J) {
        double Spread = 0.0;
        for (int64_t Row = 0; Row < G; ++Row)
          Spread += std::fabs(Gens.at(Row, J));
        const double Lo = Center[J] - Spread;
        const double Hi = Center[J] + Spread;
        if (Hi <= 0.0) {
          Center[J] = 0.0;
          for (int64_t Row = 0; Row < G; ++Row)
            Gens.at(Row, J) = 0.0;
        } else if (Lo < 0.0) {
          if (Kind == ZonotopeKind::DeepZono) {
            // Minimal-area parallelogram: y = lambda*x + mu +- mu.
            const double Lambda = Hi / (Hi - Lo);
            const double Mu = -Lambda * Lo / 2.0;
            Center[J] = Lambda * Center[J] + Mu;
            for (int64_t Row = 0; Row < G; ++Row)
              Gens.at(Row, J) *= Lambda;
            Fresh.emplace_back(J, Mu);
          } else {
            // AI2-style: forget the affine form, use [0, Hi].
            Center[J] = Hi / 2.0;
            for (int64_t Row = 0; Row < G; ++Row)
              Gens.at(Row, J) = 0.0;
            Fresh.emplace_back(J, Hi / 2.0);
          }
        }
        // Lo >= 0: identity.
      }
      if (!Fresh.empty()) {
        Tensor NewGens({G + static_cast<int64_t>(Fresh.size()), Dim});
        std::copy(Gens.data(), Gens.data() + Gens.numel(), NewGens.data());
        for (size_t K = 0; K < Fresh.size(); ++K)
          NewGens.at(G + static_cast<int64_t>(K), Fresh[K].first) =
              Fresh[K].second;
        Gens = std::move(NewGens);
      }
    }
    if (!Charge())
      return OomResults();
  }

  std::vector<ConvexResult> Results;
  Results.reserve(Specs.size());
  for (const OutputSpec &Spec : Specs) {
    ConvexResult PerSpec = Result;
    PerSpec.Bounds = liftedBounds(Center, Gens, Spec);
    Results.push_back(std::move(PerSpec));
  }
  return Results;
}

ConvexResult analyzeZonotope(const std::vector<const Layer *> &Layers,
                             const Shape &InputShape, const Tensor &Start,
                             const Tensor &End, const OutputSpec &Spec,
                             ZonotopeKind Kind, DeviceMemoryModel &Memory) {
  return analyzeZonotopeMulti(Layers, InputShape, Start, End, {Spec}, Kind,
                              Memory)
      .front();
}

} // namespace genprove
