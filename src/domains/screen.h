//===- domains/screen.h - Float32 screening tier ---------------*- C++ -*-===//
///
/// \file
/// The candidate tier of the two-tier precision fast path
/// (GenProveConfig::FastScreen). A ScreenPlan is a float32 compilation of
/// a Linear/ReLU/Flatten/Reshape pipeline: nearest-float weights for the
/// center map, directed-up |W| for the radius map, and per-layer error
/// cushions. screenClassify() pushes one parameter-range piece's bounding
/// box through the plan with round-to-nearest float kernels, widens every
/// affine image by a rigorous cushion (the float accumulationBound times
/// the activation magnitude, plus an absolute floor for subnormal-range
/// conversions), and tests the result against the output spec with
/// directed double arithmetic.
///
/// The cushion makes the screen's final box a superset of the image of the
/// piece's box under exact real interval arithmetic with the *double*
/// weights, so:
///
///  * Inside  — every constraint functional is strictly positive over the
///    screen box: every point of the piece satisfies the spec, and its
///    full CDF mass may be claimed for the lower bound without running the
///    double tier;
///  * Outside — some constraint functional is <= 0 over the whole screen
///    box: no point satisfies the (open-halfspace) spec, and the piece's
///    mass may be excluded from the upper bound;
///  * Borderline — neither certificate holds (or the pipeline contains a
///    layer kind the screen does not compile, or a non-finite value
///    appeared): the piece must re-run under the sound double tier.
///
/// The screen itself never produces a reported bound — only
/// classifications whose soundness rests on the cushion; the bounds
/// assembled from them are CDF masses and double-tier results.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_SCREEN_H
#define GENPROVE_DOMAINS_SCREEN_H

#include "src/core/spec.h"
#include "src/nn/sequential.h"

#include <vector>

namespace genprove {

/// Screen classification of one parameter-range piece.
enum class ScreenVerdict : uint8_t { Inside, Outside, Borderline };

/// Display name ("inside", "outside", "borderline").
const char *screenVerdictName(ScreenVerdict V);

/// One compiled pipeline step.
struct ScreenLayerPlan {
  enum class Op : uint8_t { Affine, Relu, Identity };
  Op Kind = Op::Identity;
  // --- Affine (Linear) fields ---
  int64_t InF = 0;
  int64_t OutF = 0;
  std::vector<float> Wf;     ///< [OutF*InF] nearest-float weights
  std::vector<float> AbsWUp; ///< [OutF*InF] floatUp(|W|) >= |W| elementwise
  std::vector<float> BiasF;  ///< [OutF] nearest-float bias
  float GammaF = 0.0f;       ///< fp::accumulationBoundF(Depth)
  int64_t Depth = 0;         ///< accumulation depth (InF + 1)
};

/// A float32 compilation of a layer pipeline. When a layer kind the screen
/// cannot compile appears (convolutions), Supported is false and every
/// piece classifies Borderline — the two-tier path then degenerates to the
/// plain sound analysis.
struct ScreenPlan {
  bool Supported = false;
  std::vector<ScreenLayerPlan> Steps;
};

/// Compile \p Layers into a screen plan (Linear, ReLU, Flatten, Reshape
/// only; anything else marks the plan unsupported).
ScreenPlan buildScreenPlan(const std::vector<const Layer *> &Layers);

/// Classify the segment piece Start->End (flat [1, N] endpoints) against
/// \p Spec by float interval propagation through \p Plan. Returns
/// Borderline whenever no certificate can be established.
ScreenVerdict screenClassify(const ScreenPlan &Plan, const Tensor &Start,
                             const Tensor &End, const OutputSpec &Spec);

} // namespace genprove

#endif // GENPROVE_DOMAINS_SCREEN_H
