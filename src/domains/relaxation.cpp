//===- domains/relaxation.cpp ---------------------------------*- C++ -*-===//

#include "src/domains/relaxation.h"

#include "src/util/stats.h"

#include <algorithm>

namespace genprove {

int64_t totalNodes(const std::vector<Region> &Regions) {
  int64_t Nodes = 0;
  for (const auto &R : Regions)
    Nodes += R.nodes();
  return Nodes;
}

void relaxRegions(std::vector<Region> &Regions, const RelaxConfig &Config) {
  // Separate the chain of curve pieces (kept in parameter order) from the
  // already-relaxed boxes.
  std::vector<Region> Curves;
  std::vector<Region> Out;
  for (auto &R : Regions) {
    if (R.Kind == RegionKind::Curve)
      Curves.push_back(std::move(R));
    else
      Out.push_back(std::move(R));
  }
  std::sort(Curves.begin(), Curves.end(),
            [](const Region &A, const Region &B) { return A.T0 < B.T0; });

  const int64_t ChainNodes = static_cast<int64_t>(Curves.size()) + 1;
  if (ChainNodes <= Config.NodeThreshold || Config.RelaxPercent <= 0.0) {
    for (auto &C : Curves)
      Out.push_back(std::move(C));
    Regions = std::move(Out);
    return;
  }

  // Length percentile threshold, computed once before any boxing.
  std::vector<double> Lengths;
  Lengths.reserve(Curves.size());
  for (const auto &C : Curves)
    Lengths.push_back(curveChordLength(C));
  const double LengthCap = percentile(Lengths, Config.RelaxPercent);

  // Per-step endpoint budget t/k: each merged box may subsume at most this
  // many segment endpoints ("clustering parameter" k).
  const int64_t StepBudget = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(ChainNodes) /
                              std::max(Config.ClusterK, 1.0)));

  size_t I = 0;
  while (I < Curves.size()) {
    // Greedily box a run of short pieces.
    bool HaveGroup = false;
    Region Group;
    int64_t Visited = 0;
    while (I < Curves.size() && Visited < StepBudget &&
           Lengths[I] <= LengthCap) {
      const Region Box = boundingBox(Curves[I]);
      Group = HaveGroup ? mergeBoxes(Group, Box) : Box;
      HaveGroup = true;
      ++Visited;
      ++I;
    }
    if (HaveGroup)
      Out.push_back(std::move(Group));
    // Skip the next piece (chain end, budget breach, or a long piece) and
    // restart the traversal after it.
    if (I < Curves.size()) {
      Out.push_back(std::move(Curves[I]));
      ++I;
    }
  }
  Regions = std::move(Out);
}

} // namespace genprove
