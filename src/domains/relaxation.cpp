//===- domains/relaxation.cpp ---------------------------------*- C++ -*-===//

#include "src/domains/relaxation.h"

#include "src/util/stats.h"

#include <algorithm>
#include <map>

namespace genprove {

int64_t totalNodes(const std::vector<Region> &Regions) {
  int64_t Nodes = 0;
  for (const auto &R : Regions)
    Nodes += R.nodes();
  return Nodes;
}

bool boxLowestMassRegions(std::vector<Region> &Regions, int64_t TargetNodes) {
  int64_t Nodes = totalNodes(Regions);
  if (Nodes <= TargetNodes || Regions.empty())
    return false;

  // Curve indices from lightest to heaviest: the cheap pieces lose their
  // exactness first, which costs the least bound mass (a boxed piece can
  // widen the probability interval by at most its weight).
  std::vector<size_t> ByMass;
  for (size_t I = 0; I < Regions.size(); ++I)
    if (Regions[I].Kind == RegionKind::Curve)
      ByMass.push_back(I);
  std::sort(ByMass.begin(), ByMass.end(), [&](size_t A, size_t B) {
    return Regions[A].Weight < Regions[B].Weight;
  });

  Region Acc;
  bool HaveAcc = false;
  std::vector<bool> Removed(Regions.size(), false);
  for (size_t Idx : ByMass) {
    if (Nodes <= TargetNodes)
      break;
    const Region Box = boundingBox(Regions[Idx]);
    Nodes -= Regions[Idx].nodes();
    if (HaveAcc) {
      Acc = mergeBoxes(Acc, Box);
    } else {
      Acc = Box;
      HaveAcc = true;
      Nodes += Acc.nodes();
    }
    Removed[Idx] = true;
  }
  // Still over target with every curve boxed: fold pre-existing boxes into
  // the accumulator too. This is the path that ends in one interval box.
  if (Nodes > TargetNodes) {
    for (size_t I = 0; I < Regions.size(); ++I) {
      if (Removed[I] || Regions[I].Kind != RegionKind::Box)
        continue;
      if (Nodes <= TargetNodes)
        break;
      if (HaveAcc) {
        Acc = mergeBoxes(Acc, Regions[I]);
        Nodes -= Regions[I].nodes();
      } else {
        Acc = Regions[I];
        HaveAcc = true;
      }
      Removed[I] = true;
    }
  }
  if (!HaveAcc)
    return false;

  std::vector<Region> Out;
  Out.reserve(Regions.size());
  for (size_t I = 0; I < Regions.size(); ++I)
    if (!Removed[I])
      Out.push_back(std::move(Regions[I]));
  Out.push_back(std::move(Acc));
  Regions = std::move(Out);
  return true;
}

namespace {

/// The single-chain relaxation heuristic (Section 3.1). All regions must
/// belong to one query; relaxRegions() below groups a batched state and
/// applies this per group, so batched relaxation is bit-identical to
/// relaxing each query's state on its own.
void relaxOneQuery(std::vector<Region> &Regions, const RelaxConfig &Config) {
  // Separate the chain of curve pieces (kept in parameter order) from the
  // already-relaxed boxes.
  std::vector<Region> Curves;
  std::vector<Region> Out;
  for (auto &R : Regions) {
    if (R.Kind == RegionKind::Curve)
      Curves.push_back(std::move(R));
    else
      Out.push_back(std::move(R));
  }
  std::sort(Curves.begin(), Curves.end(),
            [](const Region &A, const Region &B) { return A.T0 < B.T0; });

  const int64_t ChainNodes = static_cast<int64_t>(Curves.size()) + 1;
  if (ChainNodes <= Config.NodeThreshold || Config.RelaxPercent <= 0.0) {
    for (auto &C : Curves)
      Out.push_back(std::move(C));
    Regions = std::move(Out);
    return;
  }

  // Length percentile threshold, computed once before any boxing.
  std::vector<double> Lengths;
  Lengths.reserve(Curves.size());
  for (const auto &C : Curves)
    Lengths.push_back(curveChordLength(C));
  const double LengthCap = percentile(Lengths, Config.RelaxPercent);

  // Per-step endpoint budget t/k: each merged box may subsume at most this
  // many segment endpoints ("clustering parameter" k).
  const int64_t StepBudget = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(ChainNodes) /
                              std::max(Config.ClusterK, 1.0)));

  size_t I = 0;
  while (I < Curves.size()) {
    // Greedily box a run of short pieces.
    bool HaveGroup = false;
    Region Group;
    int64_t Visited = 0;
    while (I < Curves.size() && Visited < StepBudget &&
           Lengths[I] <= LengthCap) {
      const Region Box = boundingBox(Curves[I]);
      Group = HaveGroup ? mergeBoxes(Group, Box) : Box;
      HaveGroup = true;
      ++Visited;
      ++I;
    }
    if (HaveGroup)
      Out.push_back(std::move(Group));
    // Skip the next piece (chain end, budget breach, or a long piece) and
    // restart the traversal after it.
    if (I < Curves.size()) {
      Out.push_back(std::move(Curves[I]));
      ++I;
    }
  }
  Regions = std::move(Out);
}

} // namespace

void relaxRegions(std::vector<Region> &Regions, const RelaxConfig &Config) {
  // Common case: a single-query state relaxes as one connected chain.
  bool MultiQuery = false;
  for (const Region &R : Regions) {
    if (R.Query != Regions.front().Query) {
      MultiQuery = true;
      break;
    }
  }
  if (!MultiQuery) {
    relaxOneQuery(Regions, Config);
    return;
  }

  // Batched state: each query owns an independent chain. Group by tag
  // (preserving within-query order), relax each group with the unchanged
  // single-chain heuristic — so the percentile cap, node threshold and
  // clustering budget are all evaluated per query exactly as a sequential
  // run would — and concatenate in ascending query order.
  std::map<int32_t, std::vector<Region>> Groups;
  for (Region &R : Regions)
    Groups[R.Query].push_back(std::move(R));
  std::vector<Region> Out;
  Out.reserve(Regions.size());
  for (auto &[Query, Group] : Groups) {
    (void)Query;
    relaxOneQuery(Group, Config);
    for (Region &R : Group)
      Out.push_back(std::move(R));
  }
  Regions = std::move(Out);
}

} // namespace genprove
