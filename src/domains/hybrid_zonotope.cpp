//===- domains/hybrid_zonotope.cpp ----------------------------*- C++ -*-===//

#include "src/domains/hybrid_zonotope.h"

#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

Tensor reshapeRows(const Tensor &Rows, const Shape &SampleShape) {
  std::vector<int64_t> Dims = SampleShape.dims();
  Dims[0] = Rows.dim(0);
  return Rows.reshaped(Shape(Dims));
}

Tensor flattenRows(const Tensor &Acts) {
  const int64_t K = Acts.dim(0);
  return Acts.reshaped({K, Acts.numel() / std::max<int64_t>(K, 1)});
}

struct HybridState {
  Tensor Center; ///< [1, N]
  Tensor Gens;   ///< [G, N] (fixed row count)
  Tensor Slack;  ///< [1, N] per-dimension box error
};

/// Propagate the segment; returns false on OOM. Telemetry lands in Result.
bool propagateHybrid(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape, const Tensor &Start,
                     const Tensor &End, DeviceMemoryModel &Memory,
                     HybridState &St, ConvexResult &Result) {
  const bool Sound = soundRoundingEnabled();
  const int64_t N = Start.numel();
  St.Center = Tensor({1, N});
  St.Gens = Tensor({1, N});
  St.Slack = Tensor({1, N});
  for (int64_t J = 0; J < N; ++J) {
    St.Center[J] = 0.5 * (Start[J] + End[J]);
    St.Gens.at(0, J) = 0.5 * (End[J] - Start[J]);
    if (Sound)
      // Rounded endpoint representation + double-evaluated segment points.
      St.Slack[J] = fp::mulUp(
          8.0 * DBL_EPSILON,
          fp::addUp(std::fabs(Start[J]), std::fabs(End[J])));
  }

  Shape CurShape = InputShape;
  auto Charge = [&]() {
    Result.MaxGenerators = std::max(Result.MaxGenerators, St.Gens.dim(0));
    const bool Ok = Memory.chargeState(St.Gens.dim(0) + 2, CurShape.numel());
    Result.PeakBytes = Memory.peakBytes();
    return Ok;
  };
  if (!Charge())
    return false;

  for (const Layer *L : Layers) {
    if (L->isAffine()) {
      // Sound mode: bound |x| <= |c| + sum|g| + slack before the map, so
      // the rounding error of every round-to-nearest kernel below can be
      // charged to the slack afterward.
      Tensor Mag;
      Tensor BiasImage;
      if (Sound) {
        Mag = Tensor({1, St.Center.numel()});
        for (int64_t J = 0; J < St.Center.numel(); ++J) {
          double Acc = fp::addUp(std::fabs(St.Center[J]), St.Slack[J]);
          for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row)
            Acc = fp::addUp(Acc, std::fabs(St.Gens.at(Row, J)));
          Mag[J] = Acc;
        }
        BiasImage = Tensor({1, St.Center.numel()});
        Tensor BiasActs = reshapeRows(BiasImage, CurShape);
        Tensor MagActs = reshapeRows(Mag, CurShape);
        L->applyToBox(BiasActs, MagActs);
        BiasImage = flattenRows(BiasActs);
        Mag = flattenRows(MagActs);
      }

      // Slack propagates like a box radius; reuse applyToBox with a dummy
      // center so the bias does not leak into the slack.
      Tensor SlackCenter = St.Center.clone();
      Tensor SlackActs = reshapeRows(St.Slack, CurShape);
      Tensor CenterActs = reshapeRows(SlackCenter, CurShape);
      L->applyToBox(CenterActs, SlackActs);
      St.Center = flattenRows(CenterActs);
      St.Slack = flattenRows(SlackActs);
      St.Gens = flattenRows(L->applyLinear(reshapeRows(St.Gens, CurShape)));
      CurShape = L->outputShape(CurShape);

      if (Sound) {
        const double Gamma = fp::accumulationBound(L->accumulationDepth());
        for (int64_t J = 0; J < St.Slack.numel(); ++J)
          St.Slack[J] = fp::addUp(
              St.Slack[J],
              fp::mulUp(Gamma,
                        fp::addUp(Mag[J], std::fabs(BiasImage[J]))));
      }
    } else {
      const int64_t Dim = St.Center.numel();
      const int64_t G = St.Gens.dim(0);
      for (int64_t J = 0; J < Dim; ++J) {
        double Spread = St.Slack[J];
        for (int64_t Row = 0; Row < G; ++Row) {
          const double A = std::fabs(St.Gens.at(Row, J));
          Spread = Sound ? fp::addUp(Spread, A) : Spread + A;
        }
        const double Lo = Sound ? fp::subDown(St.Center[J], Spread)
                                : St.Center[J] - Spread;
        const double Hi = Sound ? fp::addUp(St.Center[J], Spread)
                                : St.Center[J] + Spread;
        if (Hi <= 0.0) {
          St.Center[J] = 0.0;
          St.Slack[J] = 0.0;
          for (int64_t Row = 0; Row < G; ++Row)
            St.Gens.at(Row, J) = 0.0;
        } else if (Lo < 0.0) {
          const double Lambda = Hi / (Hi - Lo);
          const double Mu = -Lambda * Lo / 2.0;
          if (Sound) {
            // Same argument as the DeepZono transformer: the relaxation
            // with exact lambda*/mu* of this outward [Lo, Hi] is sound,
            // and the few-ULP deviation of the computed lambda/mu plus
            // the rescaling rounding goes into the slack (which also
            // swallows mu itself — that is the hybrid trade).
            const double M = std::max(std::fabs(Lo), Hi);
            const double SumG = fp::subUp(Spread, St.Slack[J]);
            const double Inner = fp::addUp(
                std::fabs(Mu),
                fp::mulUp(Lambda,
                          fp::addUp(M, fp::addUp(std::fabs(St.Center[J]),
                                                 SumG))));
            const double LambdaUp =
                fp::mulUp(Lambda, 1.0 + 8.0 * DBL_EPSILON);
            St.Slack[J] =
                fp::addUp(fp::addUp(fp::mulUp(LambdaUp, St.Slack[J]),
                                    fp::up(Mu)),
                          fp::mulUp(16.0 * DBL_EPSILON, Inner));
          } else {
            St.Slack[J] = Lambda * St.Slack[J] + Mu;
          }
          St.Center[J] = Lambda * St.Center[J] + Mu;
          for (int64_t Row = 0; Row < G; ++Row)
            St.Gens.at(Row, J) *= Lambda;
        }
      }
    }
    if (!Charge())
      return false;
  }
  return true;
}

} // namespace

std::vector<ConvexResult> analyzeHybridZonotopeMulti(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const Tensor &Start, const Tensor &End,
    const std::vector<OutputSpec> &Specs, DeviceMemoryModel &Memory) {
  ConvexResult Result;
  HybridState St;
  if (!propagateHybrid(Layers, InputShape, Start, End, Memory, St, Result)) {
    Result.Bounds = {0.0, 1.0, true};
    return std::vector<ConvexResult>(Specs.size(), Result);
  }

  // Spec tests including the box slack.
  const bool Sound = soundRoundingEnabled();
  std::vector<ConvexResult> Results;
  Results.reserve(Specs.size());
  for (const OutputSpec &Spec : Specs) {
    bool Contained = true;
    bool Intersects = true;
    for (const auto &H : Spec.halfspaces()) {
      if (!Sound) {
        double Mid = H.Offset;
        double Spread = 0.0;
        for (int64_t J = 0; J < H.Normal.numel(); ++J) {
          Mid += H.Normal[J] * St.Center[J];
          Spread += std::fabs(H.Normal[J]) * St.Slack[J];
        }
        for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row) {
          double Dot = 0.0;
          for (int64_t J = 0; J < St.Gens.dim(1); ++J)
            Dot += H.Normal[J] * St.Gens.at(Row, J);
          Spread += std::fabs(Dot);
        }
        if (Mid - Spread <= 0.0)
          Contained = false;
        if (Mid + Spread <= 0.0)
          Intersects = false;
        continue;
      }
      double MidLo = H.Offset, MidHi = H.Offset;
      double SpreadUp = 0.0;
      for (int64_t J = 0; J < H.Normal.numel(); ++J) {
        MidLo = fp::addDown(MidLo, fp::mulDown(H.Normal[J], St.Center[J]));
        MidHi = fp::addUp(MidHi, fp::mulUp(H.Normal[J], St.Center[J]));
        SpreadUp = fp::addUp(
            SpreadUp, fp::mulUp(std::fabs(H.Normal[J]), St.Slack[J]));
      }
      for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row) {
        double DotLo = 0.0, DotHi = 0.0;
        for (int64_t J = 0; J < St.Gens.dim(1); ++J) {
          DotLo =
              fp::addDown(DotLo, fp::mulDown(H.Normal[J], St.Gens.at(Row, J)));
          DotHi = fp::addUp(DotHi, fp::mulUp(H.Normal[J], St.Gens.at(Row, J)));
        }
        SpreadUp = fp::addUp(SpreadUp,
                             std::max(std::fabs(DotLo), std::fabs(DotHi)));
      }
      if (fp::subDown(MidLo, SpreadUp) <= 0.0)
        Contained = false;
      if (fp::addUp(MidHi, SpreadUp) <= 0.0)
        Intersects = false;
    }
    ConvexResult PerSpec = Result;
    if (Contained)
      PerSpec.Bounds = {1.0, 1.0, false};
    else if (!Intersects)
      PerSpec.Bounds = {0.0, 0.0, false};
    else
      PerSpec.Bounds = {0.0, 1.0, false};
    Results.push_back(std::move(PerSpec));
  }
  return Results;
}

ConvexResult analyzeHybridZonotope(const std::vector<const Layer *> &Layers,
                                   const Shape &InputShape,
                                   const Tensor &Start, const Tensor &End,
                                   const OutputSpec &Spec,
                                   DeviceMemoryModel &Memory) {
  return analyzeHybridZonotopeMulti(Layers, InputShape, Start, End, {Spec},
                                    Memory)
      .front();
}

ZonotopeOutputBounds
hybridZonotopeOutputBounds(const std::vector<const Layer *> &Layers,
                           const Shape &InputShape, const Tensor &Start,
                           const Tensor &End, DeviceMemoryModel &Memory) {
  ZonotopeOutputBounds Out;
  ConvexResult Result;
  HybridState St;
  if (!propagateHybrid(Layers, InputShape, Start, End, Memory, St, Result)) {
    Out.OutOfMemory = true;
    return Out;
  }
  const int64_t N = St.Center.numel();
  Out.Lo = Tensor({1, N});
  Out.Hi = Tensor({1, N});
  for (int64_t J = 0; J < N; ++J) {
    double Spread = St.Slack[J];
    for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row)
      Spread = fp::addUp(Spread, std::fabs(St.Gens.at(Row, J)));
    Out.Lo[J] = fp::subDown(St.Center[J], Spread);
    Out.Hi[J] = fp::addUp(St.Center[J], Spread);
  }
  return Out;
}

} // namespace genprove
