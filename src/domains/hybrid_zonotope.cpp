//===- domains/hybrid_zonotope.cpp ----------------------------*- C++ -*-===//

#include "src/domains/hybrid_zonotope.h"

#include "src/nn/linear.h"
#include "src/tensor/ops.h"
#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

Tensor reshapeRows(const Tensor &Rows, const Shape &SampleShape) {
  std::vector<int64_t> Dims = SampleShape.dims();
  Dims[0] = Rows.dim(0);
  return Rows.reshaped(Shape(Dims));
}

Tensor flattenRows(const Tensor &Acts) {
  const int64_t K = Acts.dim(0);
  return Acts.reshaped({K, Acts.numel() / std::max<int64_t>(K, 1)});
}

struct HybridState {
  Tensor Center; ///< [1, N]
  Tensor Gens;   ///< [G, N] (fixed row count)
  Tensor Slack;  ///< [1, N] per-dimension box error
};

HybridState initHybridState(const Tensor &Start, const Tensor &End) {
  const bool Sound = soundRoundingEnabled();
  const int64_t N = Start.numel();
  HybridState St{Tensor({1, N}), Tensor({1, N}), Tensor({1, N})};
  for (int64_t J = 0; J < N; ++J) {
    St.Center[J] = 0.5 * (Start[J] + End[J]);
    St.Gens.at(0, J) = 0.5 * (End[J] - Start[J]);
    if (Sound)
      // Rounded endpoint representation + double-evaluated segment points.
      St.Slack[J] = fp::mulUp(
          8.0 * DBL_EPSILON,
          fp::addUp(std::fabs(Start[J]), std::fabs(End[J])));
  }
  return St;
}

/// One affine layer on any number of per-query states at once: all
/// center/slack rows (and in sound mode the magnitude rows) flow through
/// single stacked applyToBox calls, all generator rows through one
/// applyLinear. Every kernel is row-independent, so each state's rows are
/// bit-identical to a one-state call.
/// With \p Fuse (the layer is known Linear, feeding a ReLU) the
/// center/slack/magnitude planes run through the fused single-pass weight
/// kernel (tensor/ops.h); unlike the plain zonotope the hybrid slack is
/// live in round-to-nearest mode too, so both rounding modes take the
/// fused kernel. Every output element is bit-identical either way.
void applyAffineToStates(const Layer *L, const Shape &CurShape,
                         std::vector<HybridState> &States, bool Fuse) {
  const bool Sound = soundRoundingEnabled();
  const int64_t K = static_cast<int64_t>(States.size());
  const int64_t N = States.front().Center.numel();

  Tensor Centers({K, N});
  Tensor Slacks({K, N});
  for (int64_t I = 0; I < K; ++I) {
    std::copy(States[I].Center.data(), States[I].Center.data() + N,
              Centers.data() + I * N);
    std::copy(States[I].Slack.data(), States[I].Slack.data() + N,
              Slacks.data() + I * N);
  }
  int64_t SumG = 0;
  for (const HybridState &St : States)
    SumG += St.Gens.dim(0);
  Tensor AllGens({SumG, N});
  {
    int64_t Row = 0;
    for (const HybridState &St : States) {
      std::copy(St.Gens.data(), St.Gens.data() + St.Gens.numel(),
                AllGens.data() + Row * N);
      Row += St.Gens.dim(0);
    }
  }

  // Sound mode: bound |x| <= |c| + slack + sum|g| before the map, so the
  // rounding error of every round-to-nearest kernel below can be charged
  // to the slack afterward.
  Tensor Mags, BiasImages;
  // Fused path: the zero-input bias image is the bias vector itself (a
  // zero dot product is +0.0 under round-to-nearest, and |+-0.0 + b| ==
  // |b| bitwise), so the epilogue reads the shared bias row directly.
  const double *FusedBias = nullptr;
  if (Sound) {
    Mags = Tensor({K, N});
    for (int64_t I = 0; I < K; ++I) {
      const HybridState &St = States[I];
      for (int64_t J = 0; J < N; ++J) {
        double Acc = fp::addUp(std::fabs(St.Center[J]), St.Slack[J]);
        for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row)
          Acc = fp::addUp(Acc, std::fabs(St.Gens.at(Row, J)));
        Mags.at(I, J) = Acc;
      }
    }
  }

  if (Fuse) {
    const Linear *Lin = static_cast<const Linear *>(L);
    const Tensor &Wt = Lin->transposedWeight();
    const Tensor &Bias = Lin->bias();
    Tensor NewCenters, NewSlacks, NewMags;
    fusedBoxAffineTransT(Centers, Slacks, Sound ? &Mags : nullptr, Wt, Bias,
                         NewCenters, NewSlacks, Sound ? &NewMags : nullptr);
    Centers = std::move(NewCenters);
    Slacks = std::move(NewSlacks);
    if (Sound) {
      Mags = std::move(NewMags);
      FusedBias = Bias.data();
    }
    AllGens = matmul(AllGens, Wt);
  } else {
    if (Sound) {
      BiasImages = Tensor({K, N});
      Tensor BiasActs = reshapeRows(BiasImages, CurShape);
      Tensor MagActs = reshapeRows(Mags, CurShape);
      L->applyToBox(BiasActs, MagActs);
      BiasImages = flattenRows(BiasActs);
      Mags = flattenRows(MagActs);
    }

    // Slack propagates like a box radius; applyToBox maps the centers too.
    {
      Tensor CenterActs = reshapeRows(Centers, CurShape);
      Tensor SlackActs = reshapeRows(Slacks, CurShape);
      L->applyToBox(CenterActs, SlackActs);
      Centers = flattenRows(CenterActs);
      Slacks = flattenRows(SlackActs);
    }
    AllGens = flattenRows(L->applyLinear(reshapeRows(AllGens, CurShape)));
  }

  const double Gamma =
      Sound ? fp::accumulationBound(L->accumulationDepth()) : 0.0;
  const int64_t OutN = Centers.dim(1);
  int64_t Row = 0;
  for (int64_t I = 0; I < K; ++I) {
    HybridState &St = States[I];
    const int64_t G = St.Gens.dim(0);
    Tensor NewCenter({1, OutN});
    std::copy(Centers.data() + I * OutN, Centers.data() + (I + 1) * OutN,
              NewCenter.data());
    Tensor NewSlack({1, OutN});
    std::copy(Slacks.data() + I * OutN, Slacks.data() + (I + 1) * OutN,
              NewSlack.data());
    Tensor NewGens({G, OutN});
    std::copy(AllGens.data() + Row * OutN, AllGens.data() + (Row + G) * OutN,
              NewGens.data());
    Row += G;
    if (Sound)
      for (int64_t J = 0; J < OutN; ++J)
        NewSlack[J] = fp::addUp(
            NewSlack[J],
            fp::mulUp(Gamma,
                      fp::addUp(Mags.at(I, J),
                                std::fabs(FusedBias
                                              ? FusedBias[J]
                                              : BiasImages.at(I, J)))));
    St.Center = std::move(NewCenter);
    St.Slack = std::move(NewSlack);
    St.Gens = std::move(NewGens);
  }
}

/// The hybrid ReLU transformer on one state: the fixed generator rows are
/// rescaled and the relaxation error lands in the box slack.
void applyReluToState(HybridState &St) {
  const bool Sound = soundRoundingEnabled();
  const int64_t Dim = St.Center.numel();
  const int64_t G = St.Gens.dim(0);
  for (int64_t J = 0; J < Dim; ++J) {
    double Spread = St.Slack[J];
    for (int64_t Row = 0; Row < G; ++Row) {
      const double A = std::fabs(St.Gens.at(Row, J));
      Spread = Sound ? fp::addUp(Spread, A) : Spread + A;
    }
    const double Lo = Sound ? fp::subDown(St.Center[J], Spread)
                            : St.Center[J] - Spread;
    const double Hi = Sound ? fp::addUp(St.Center[J], Spread)
                            : St.Center[J] + Spread;
    if (Hi <= 0.0) {
      St.Center[J] = 0.0;
      St.Slack[J] = 0.0;
      for (int64_t Row = 0; Row < G; ++Row)
        St.Gens.at(Row, J) = 0.0;
    } else if (Lo < 0.0) {
      const double Lambda = Hi / (Hi - Lo);
      const double Mu = -Lambda * Lo / 2.0;
      if (Sound) {
        // Same argument as the DeepZono transformer: the relaxation
        // with exact lambda*/mu* of this outward [Lo, Hi] is sound,
        // and the few-ULP deviation of the computed lambda/mu plus
        // the rescaling rounding goes into the slack (which also
        // swallows mu itself — that is the hybrid trade).
        const double M = std::max(std::fabs(Lo), Hi);
        const double SumG = fp::subUp(Spread, St.Slack[J]);
        const double Inner = fp::addUp(
            std::fabs(Mu),
            fp::mulUp(Lambda,
                      fp::addUp(M, fp::addUp(std::fabs(St.Center[J]),
                                             SumG))));
        const double LambdaUp =
            fp::mulUp(Lambda, 1.0 + 8.0 * DBL_EPSILON);
        St.Slack[J] =
            fp::addUp(fp::addUp(fp::mulUp(LambdaUp, St.Slack[J]),
                                fp::up(Mu)),
                      fp::mulUp(16.0 * DBL_EPSILON, Inner));
      } else {
        St.Slack[J] = Lambda * St.Slack[J] + Mu;
      }
      St.Center[J] = Lambda * St.Center[J] + Mu;
      for (int64_t Row = 0; Row < G; ++Row)
        St.Gens.at(Row, J) *= Lambda;
    }
  }
}

/// Propagate many segments as one joint state; returns false on OOM. The
/// per-layer device charge is the sum of every state's charge (the joint
/// state is resident at once). Telemetry lands in Result.
bool propagateHybridBatch(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const std::vector<std::pair<Tensor, Tensor>> &Segments,
    DeviceMemoryModel &Memory, std::vector<HybridState> &States,
    ConvexResult &Result, bool Fuse) {
  States.clear();
  States.reserve(Segments.size());
  for (const auto &Seg : Segments)
    States.push_back(initHybridState(Seg.first, Seg.second));

  Shape CurShape = InputShape;
  // The fused path consumes a Linear->ReLU pair per iteration but replays
  // both layer boundaries' charges (pair boundary from pre-ReLU
  // snapshots), so OOM points and telemetry match the unfused run. The
  // hybrid generator count is fixed, but the replay keeps the charge
  // sequence literally identical.
  auto ChargeRows = [&](int64_t Rows, int64_t MaxG, int64_t Numel) {
    Result.MaxGenerators = std::max(Result.MaxGenerators, MaxG);
    const bool Ok = Memory.chargeState(Rows, Numel);
    Result.PeakBytes = Memory.peakBytes();
    return Ok;
  };
  auto Charge = [&]() {
    int64_t Rows = 0;
    int64_t MaxG = 0;
    for (const HybridState &St : States) {
      MaxG = std::max(MaxG, St.Gens.dim(0));
      Rows += St.Gens.dim(0) + 2;
    }
    return ChargeRows(Rows, MaxG, CurShape.numel());
  };
  if (!Charge())
    return false;

  const size_t NumLayers = Layers.size();
  for (size_t Li = 0; Li < NumLayers; ++Li) {
    const Layer *L = Layers[Li];
    if (L->isAffine()) {
      const bool FuseNext = Fuse && L->kind() == Layer::Kind::Linear &&
                            Li + 1 < NumLayers &&
                            Layers[Li + 1]->kind() == Layer::Kind::ReLU;
      applyAffineToStates(L, CurShape, States, FuseNext);
      CurShape = L->outputShape(CurShape);
      if (FuseNext) {
        int64_t RowsPre = 0;
        int64_t MaxGPre = 0;
        for (const HybridState &St : States) {
          MaxGPre = std::max(MaxGPre, St.Gens.dim(0));
          RowsPre += St.Gens.dim(0) + 2;
        }
        for (HybridState &St : States)
          applyReluToState(St);
        if (!ChargeRows(RowsPre, MaxGPre, CurShape.numel()))
          return false;
        if (!Charge())
          return false;
        ++Li; // the ReLU layer was consumed by the fused step
        continue;
      }
    } else {
      for (HybridState &St : States)
        applyReluToState(St);
    }
    if (!Charge())
      return false;
  }
  return true;
}

/// Propagate one segment (the batch-of-one special case; identical
/// charges, identical kernel calls); returns false on OOM.
bool propagateHybrid(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape, const Tensor &Start,
                     const Tensor &End, DeviceMemoryModel &Memory,
                     HybridState &St, ConvexResult &Result, bool Fuse) {
  std::vector<std::pair<Tensor, Tensor>> Segments;
  Segments.emplace_back(Start, End);
  std::vector<HybridState> States;
  if (!propagateHybridBatch(Layers, InputShape, Segments, Memory, States,
                            Result, Fuse))
    return false;
  St = std::move(States.front());
  return true;
}

/// Spec test on a final hybrid state, including the box slack.
ProbBounds liftedBounds(const HybridState &St, const OutputSpec &Spec) {
  const bool Sound = soundRoundingEnabled();
  bool Contained = true;
  bool Intersects = true;
  for (const auto &H : Spec.halfspaces()) {
    if (!Sound) {
      double Mid = H.Offset;
      double Spread = 0.0;
      for (int64_t J = 0; J < H.Normal.numel(); ++J) {
        Mid += H.Normal[J] * St.Center[J];
        Spread += std::fabs(H.Normal[J]) * St.Slack[J];
      }
      for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row) {
        double Dot = 0.0;
        for (int64_t J = 0; J < St.Gens.dim(1); ++J)
          Dot += H.Normal[J] * St.Gens.at(Row, J);
        Spread += std::fabs(Dot);
      }
      if (Mid - Spread <= 0.0)
        Contained = false;
      if (Mid + Spread <= 0.0)
        Intersects = false;
      continue;
    }
    double MidLo = H.Offset, MidHi = H.Offset;
    double SpreadUp = 0.0;
    for (int64_t J = 0; J < H.Normal.numel(); ++J) {
      MidLo = fp::addDown(MidLo, fp::mulDown(H.Normal[J], St.Center[J]));
      MidHi = fp::addUp(MidHi, fp::mulUp(H.Normal[J], St.Center[J]));
      SpreadUp = fp::addUp(
          SpreadUp, fp::mulUp(std::fabs(H.Normal[J]), St.Slack[J]));
    }
    for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row) {
      double DotLo = 0.0, DotHi = 0.0;
      for (int64_t J = 0; J < St.Gens.dim(1); ++J) {
        DotLo =
            fp::addDown(DotLo, fp::mulDown(H.Normal[J], St.Gens.at(Row, J)));
        DotHi = fp::addUp(DotHi, fp::mulUp(H.Normal[J], St.Gens.at(Row, J)));
      }
      SpreadUp = fp::addUp(SpreadUp,
                           std::max(std::fabs(DotLo), std::fabs(DotHi)));
    }
    if (fp::subDown(MidLo, SpreadUp) <= 0.0)
      Contained = false;
    if (fp::addUp(MidHi, SpreadUp) <= 0.0)
      Intersects = false;
  }
  if (Contained)
    return {1.0, 1.0, false};
  if (!Intersects)
    return {0.0, 0.0, false};
  return {0.0, 1.0, false};
}

} // namespace

std::vector<ConvexResult> analyzeHybridZonotopeMulti(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const Tensor &Start, const Tensor &End,
    const std::vector<OutputSpec> &Specs, DeviceMemoryModel &Memory,
    bool Fuse) {
  ConvexResult Result;
  HybridState St;
  if (!propagateHybrid(Layers, InputShape, Start, End, Memory, St, Result,
                       Fuse)) {
    Result.Bounds = {0.0, 1.0, true};
    return std::vector<ConvexResult>(Specs.size(), Result);
  }
  std::vector<ConvexResult> Results;
  Results.reserve(Specs.size());
  for (const OutputSpec &Spec : Specs) {
    ConvexResult PerSpec = Result;
    PerSpec.Bounds = liftedBounds(St, Spec);
    Results.push_back(std::move(PerSpec));
  }
  return Results;
}

std::vector<std::vector<ConvexResult>> analyzeHybridZonotopeBatch(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const std::vector<std::pair<Tensor, Tensor>> &Segments,
    const std::vector<OutputSpec> &Specs, DeviceMemoryModel &Memory,
    bool Fuse) {
  const size_t K = Segments.size();
  std::vector<std::vector<ConvexResult>> Out(K);
  if (K == 0)
    return Out;
  ConvexResult Joint;
  std::vector<HybridState> States;
  if (!propagateHybridBatch(Layers, InputShape, Segments, Memory, States,
                            Joint, Fuse)) {
    // The joint state blew the budget: fall back to sequential
    // per-segment analyses so bounds match a caller-side loop.
    for (size_t I = 0; I < K; ++I)
      Out[I] =
          analyzeHybridZonotopeMulti(Layers, InputShape, Segments[I].first,
                                     Segments[I].second, Specs, Memory, Fuse);
    return Out;
  }
  for (size_t I = 0; I < K; ++I) {
    Out[I].reserve(Specs.size());
    for (const OutputSpec &Spec : Specs) {
      ConvexResult PerSpec = Joint;
      PerSpec.Bounds = liftedBounds(States[I], Spec);
      Out[I].push_back(std::move(PerSpec));
    }
  }
  return Out;
}

ConvexResult analyzeHybridZonotope(const std::vector<const Layer *> &Layers,
                                   const Shape &InputShape,
                                   const Tensor &Start, const Tensor &End,
                                   const OutputSpec &Spec,
                                   DeviceMemoryModel &Memory, bool Fuse) {
  return analyzeHybridZonotopeMulti(Layers, InputShape, Start, End, {Spec},
                                    Memory, Fuse)
      .front();
}

ZonotopeOutputBounds
hybridZonotopeOutputBounds(const std::vector<const Layer *> &Layers,
                           const Shape &InputShape, const Tensor &Start,
                           const Tensor &End, DeviceMemoryModel &Memory,
                           bool Fuse) {
  ZonotopeOutputBounds Out;
  ConvexResult Result;
  HybridState St;
  if (!propagateHybrid(Layers, InputShape, Start, End, Memory, St, Result,
                       Fuse)) {
    Out.OutOfMemory = true;
    return Out;
  }
  const int64_t N = St.Center.numel();
  Out.Lo = Tensor({1, N});
  Out.Hi = Tensor({1, N});
  for (int64_t J = 0; J < N; ++J) {
    double Spread = St.Slack[J];
    for (int64_t Row = 0; Row < St.Gens.dim(0); ++Row)
      Spread = fp::addUp(Spread, std::fabs(St.Gens.at(Row, J)));
    Out.Lo[J] = fp::subDown(St.Center[J], Spread);
    Out.Hi[J] = fp::addUp(St.Center[J], Spread);
  }
  return Out;
}

} // namespace genprove
