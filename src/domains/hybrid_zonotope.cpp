//===- domains/hybrid_zonotope.cpp ----------------------------*- C++ -*-===//

#include "src/domains/hybrid_zonotope.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

Tensor reshapeRows(const Tensor &Rows, const Shape &SampleShape) {
  std::vector<int64_t> Dims = SampleShape.dims();
  Dims[0] = Rows.dim(0);
  return Rows.reshaped(Shape(Dims));
}

Tensor flattenRows(const Tensor &Acts) {
  const int64_t K = Acts.dim(0);
  return Acts.reshaped({K, Acts.numel() / std::max<int64_t>(K, 1)});
}

} // namespace

std::vector<ConvexResult> analyzeHybridZonotopeMulti(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const Tensor &Start, const Tensor &End,
    const std::vector<OutputSpec> &Specs, DeviceMemoryModel &Memory) {
  ConvexResult Result;
  const int64_t N = Start.numel();
  Tensor Center({1, N});
  Tensor Gens({1, N});
  Tensor Slack({1, N}); // per-dimension box error
  for (int64_t J = 0; J < N; ++J) {
    Center[J] = 0.5 * (Start[J] + End[J]);
    Gens.at(0, J) = 0.5 * (End[J] - Start[J]);
  }

  Shape CurShape = InputShape;
  auto Charge = [&]() {
    Result.MaxGenerators = std::max(Result.MaxGenerators, Gens.dim(0));
    const bool Ok = Memory.chargeState(Gens.dim(0) + 2, CurShape.numel());
    Result.PeakBytes = Memory.peakBytes();
    return Ok;
  };
  auto OomResults = [&]() {
    Result.Bounds = {0.0, 1.0, true};
    return std::vector<ConvexResult>(Specs.size(), Result);
  };
  if (!Charge())
    return OomResults();

  for (const Layer *L : Layers) {
    if (L->isAffine()) {
      // Slack propagates like a box radius; reuse applyToBox with a dummy
      // center so the bias does not leak into the slack.
      Tensor SlackCenter = Center.clone();
      Tensor SlackActs = reshapeRows(Slack, CurShape);
      Tensor CenterActs = reshapeRows(SlackCenter, CurShape);
      L->applyToBox(CenterActs, SlackActs);
      Center = flattenRows(CenterActs);
      Slack = flattenRows(SlackActs);
      Gens = flattenRows(L->applyLinear(reshapeRows(Gens, CurShape)));
      CurShape = L->outputShape(CurShape);
    } else {
      const int64_t Dim = Center.numel();
      const int64_t G = Gens.dim(0);
      for (int64_t J = 0; J < Dim; ++J) {
        double Spread = Slack[J];
        for (int64_t Row = 0; Row < G; ++Row)
          Spread += std::fabs(Gens.at(Row, J));
        const double Lo = Center[J] - Spread;
        const double Hi = Center[J] + Spread;
        if (Hi <= 0.0) {
          Center[J] = 0.0;
          Slack[J] = 0.0;
          for (int64_t Row = 0; Row < G; ++Row)
            Gens.at(Row, J) = 0.0;
        } else if (Lo < 0.0) {
          const double Lambda = Hi / (Hi - Lo);
          const double Mu = -Lambda * Lo / 2.0;
          Center[J] = Lambda * Center[J] + Mu;
          Slack[J] = Lambda * Slack[J] + Mu; // error absorbed by the box
          for (int64_t Row = 0; Row < G; ++Row)
            Gens.at(Row, J) *= Lambda;
        }
      }
    }
    if (!Charge())
      return OomResults();
  }

  // Spec tests including the box slack.
  std::vector<ConvexResult> Results;
  Results.reserve(Specs.size());
  for (const OutputSpec &Spec : Specs) {
    bool Contained = true;
    bool Intersects = true;
    for (const auto &H : Spec.halfspaces()) {
      double Mid = H.Offset;
      double Spread = 0.0;
      for (int64_t J = 0; J < H.Normal.numel(); ++J) {
        Mid += H.Normal[J] * Center[J];
        Spread += std::fabs(H.Normal[J]) * Slack[J];
      }
      for (int64_t Row = 0; Row < Gens.dim(0); ++Row) {
        double Dot = 0.0;
        for (int64_t J = 0; J < Gens.dim(1); ++J)
          Dot += H.Normal[J] * Gens.at(Row, J);
        Spread += std::fabs(Dot);
      }
      if (Mid - Spread <= 0.0)
        Contained = false;
      if (Mid + Spread <= 0.0)
        Intersects = false;
    }
    ConvexResult PerSpec = Result;
    if (Contained)
      PerSpec.Bounds = {1.0, 1.0, false};
    else if (!Intersects)
      PerSpec.Bounds = {0.0, 0.0, false};
    else
      PerSpec.Bounds = {0.0, 1.0, false};
    Results.push_back(std::move(PerSpec));
  }
  return Results;
}

ConvexResult analyzeHybridZonotope(const std::vector<const Layer *> &Layers,
                                   const Shape &InputShape,
                                   const Tensor &Start, const Tensor &End,
                                   const OutputSpec &Spec,
                                   DeviceMemoryModel &Memory) {
  return analyzeHybridZonotopeMulti(Layers, InputShape, Start, End, {Spec},
                                    Memory)
      .front();
}

} // namespace genprove
