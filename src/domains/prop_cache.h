//===- domains/prop_cache.h - Memoizing abstract-state cache ---*- C++ -*-===//
///
/// \file
/// PropagationCache memoizes per-layer abstract states across
/// propagations, so repeated or prefix-shared queries warm-start
/// mid-network instead of re-propagating from layer 0. The serve daemon
/// and the CLI see the bulk of the win: robustness certification traffic
/// is dominated by re-checked and near-duplicate specifications against
/// one frozen decoder.
///
/// Keying. A propagation is identified by a *key chain*: FNV-1a hashes
/// where Chain[0] covers a caller salt (engine knobs the transformers
/// depend on: relaxation config, split epsilon, sound-rounding mode,
/// domain and input-distribution tags), the input activation shape, and
/// the bit patterns of every input region — and Chain[i+1] extends
/// Chain[i] with layer i's fingerprint (structure plus parameter bits,
/// memoized against the layer's AbsWeightCache generation, see
/// nn/layer.h). Chain[i] therefore names the exact abstract state at the
/// boundary entering layer i. Two chains share a prefix exactly when a
/// cold recomputation would be bit-identical over that prefix, which is
/// the equivalence the engine's determinism contract guarantees — so a
/// warm start can never change final bounds, only skip work.
///
/// OOM fidelity. Each entry stores the peak device charge of the prefix
/// that produced it. A warm start replays that peak as a single charge
/// against the caller's DeviceMemoryModel: the peak of a monotone charge
/// sequence equals its maximum, so budget exhaustion (and the
/// device.peak_budget_ratio gauge) behaves exactly as a cold run's.
///
/// Budgeting. Entries are charged bytes like any abstract state
/// (stateBytes of the stored nodes) against an embedded DeviceMemoryModel
/// whose budget is the configured cache budget; insertion evicts in LRU
/// order until the new entry fits. configure(0) — the default — disables
/// the cache entirely and drops all entries.
///
/// Only *clean* states are cached: the engine stores a boundary state
/// only when no degradation rung fired and no fault injection is armed
/// (resilient runs never consult the cache at all, because their prefix
/// states depend on the memory budget, not just the inputs).
///
/// Counters cache.hits / cache.misses / cache.evictions /
/// cache.insertions, the cache.bytes gauge and the cache.hit_rate gauge
/// feed the metrics registry (run_report.json, Prometheus, /stats); hits
/// and misses count per propagation, not per probed boundary, so
/// hit_rate is the fraction of propagations that warm-started.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_PROP_CACHE_H
#define GENPROVE_DOMAINS_PROP_CACHE_H

#include "src/domains/memory_model.h"
#include "src/domains/region.h"
#include "src/nn/layer.h"
#include "src/tensor/shape.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace genprove {

class PropagationCache {
public:
  /// The process-wide cache shared by every propagation (CLI runs, bench
  /// grid cells, serve daemon requests). Disabled until configure()d.
  static PropagationCache &global();

  PropagationCache() = default;
  PropagationCache(const PropagationCache &) = delete;
  PropagationCache &operator=(const PropagationCache &) = delete;

  /// Set the byte budget; 0 disables the cache and drops every entry.
  void configure(size_t BudgetBytes);

  bool enabled() const;
  size_t budgetBytes() const;
  /// Bytes currently resident (sum of entry state bytes).
  size_t bytes() const;
  /// Drop every entry, keep the budget and the counters.
  void clear();

  /// Point-in-time counter values, for /stats and tests.
  struct Snapshot {
    int64_t Hits = 0;
    int64_t Misses = 0;
    int64_t Evictions = 0;
    int64_t Insertions = 0;
    size_t Bytes = 0;
    size_t BudgetBytes = 0;
  };
  Snapshot snapshot() const;

  /// Build the key chain for a propagation: Chain[i] names the abstract
  /// state at the boundary entering layer i (Chain has Layers.size()+1
  /// entries; the last names the final state).
  static std::vector<uint64_t>
  chainKeys(uint64_t Salt, const Shape &InputShape,
            const std::vector<Region> &Input,
            const std::vector<const Layer *> &Layers);

  /// Probe the chain from the deepest boundary down to boundary 1 and
  /// copy out the deepest cached state. Returns the number of layers the
  /// caller may skip (0 = miss). Counts one hit or one miss per call.
  size_t lookupDeepest(const std::vector<uint64_t> &Chain,
                       std::vector<Region> &State, Shape &StateShape,
                       size_t &PrefixPeakBytes);

  /// Non-counting probe: the deepest boundary index with a resident
  /// entry (0 = none). Touches neither the counters nor the LRU order —
  /// used by the batch router to decide which queries can skip the joint
  /// propagation before any propagation is attempted.
  size_t peekDepth(const std::vector<uint64_t> &Chain) const;

  /// Insert (a deep copy of) a clean boundary state. PrefixPeakBytes is
  /// the peak device charge of the propagation prefix that produced the
  /// state, replayed on warm start. A key that is already resident is
  /// only touched in LRU order; an entry larger than the whole budget is
  /// dropped on the floor.
  void store(uint64_t Key, const std::vector<Region> &State,
             const Shape &StateShape, size_t PrefixPeakBytes);

private:
  struct Entry {
    std::vector<Region> State;
    Shape StateShape;
    size_t PrefixPeakBytes = 0;
    size_t Bytes = 0;
    std::list<uint64_t>::iterator LruIt;
  };

  void touchLocked(Entry &E, uint64_t Key);
  void publishGaugesLocked();

  mutable std::mutex Mu;
  size_t Budget = 0;
  size_t CurBytes = 0;
  std::unordered_map<uint64_t, Entry> Map;
  /// Front = most recently used; eviction pops the back.
  std::list<uint64_t> Lru;
  /// Charges mirror the cache's resident bytes, so cache pressure shows
  /// up in the same device accounting the abstract states use.
  std::unique_ptr<DeviceMemoryModel> Device;
  int64_t Hits = 0;
  int64_t Misses = 0;
  int64_t Evictions = 0;
  int64_t Insertions = 0;
};

} // namespace genprove

#endif // GENPROVE_DOMAINS_PROP_CACHE_H
