//===- domains/prop_cache.cpp ---------------------------------*- C++ -*-===//

#include "src/domains/prop_cache.h"

#include "src/domains/relaxation.h"
#include "src/obs/metrics.h"
#include "src/util/hash.h"

namespace genprove {

namespace {

uint64_t hashRegion(uint64_t H, const Region &R) {
  H = hashing::hashU64(H, static_cast<uint64_t>(R.Kind));
  H = hashing::hashU64(H, static_cast<uint64_t>(R.Query));
  H = hashing::hashDouble(H, R.Weight);
  if (R.Kind == RegionKind::Curve) {
    H = hashing::hashDouble(H, R.T0);
    H = hashing::hashDouble(H, R.T1);
    H = hashing::hashU64(H, static_cast<uint64_t>(R.Coeffs.dim(0)));
    H = hashing::hashU64(H, static_cast<uint64_t>(R.Coeffs.dim(1)));
    H = hashing::hashBytes(H, R.Coeffs.data(),
                           static_cast<size_t>(R.Coeffs.numel()) *
                               sizeof(double));
  } else {
    H = hashing::hashU64(H, static_cast<uint64_t>(R.Center.dim(1)));
    H = hashing::hashBytes(H, R.Center.data(),
                           static_cast<size_t>(R.Center.numel()) *
                               sizeof(double));
    H = hashing::hashBytes(H, R.Radius.data(),
                           static_cast<size_t>(R.Radius.numel()) *
                               sizeof(double));
  }
  return H;
}

size_t entryBytes(const std::vector<Region> &State) {
  const int64_t Dim = State.empty() ? 0 : State.front().dim();
  return stateBytes(totalNodes(State), Dim);
}

Counter &hitsCtr() {
  static Counter &C = MetricsRegistry::global().counter("cache.hits");
  return C;
}
Counter &missesCtr() {
  static Counter &C = MetricsRegistry::global().counter("cache.misses");
  return C;
}
Counter &evictionsCtr() {
  static Counter &C = MetricsRegistry::global().counter("cache.evictions");
  return C;
}
Counter &insertionsCtr() {
  static Counter &C = MetricsRegistry::global().counter("cache.insertions");
  return C;
}

} // namespace

PropagationCache &PropagationCache::global() {
  static PropagationCache Cache;
  return Cache;
}

void PropagationCache::configure(size_t BudgetBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  Budget = BudgetBytes;
  Map.clear();
  Lru.clear();
  CurBytes = 0;
  Device = BudgetBytes
               ? std::make_unique<DeviceMemoryModel>(BudgetBytes)
               : nullptr;
  publishGaugesLocked();
}

bool PropagationCache::enabled() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Budget != 0;
}

size_t PropagationCache::budgetBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Budget;
}

size_t PropagationCache::bytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return CurBytes;
}

void PropagationCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
  Lru.clear();
  CurBytes = 0;
  if (Device)
    Device->reset();
  publishGaugesLocked();
}

PropagationCache::Snapshot PropagationCache::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Snapshot S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Insertions = Insertions;
  S.Bytes = CurBytes;
  S.BudgetBytes = Budget;
  return S;
}

std::vector<uint64_t>
PropagationCache::chainKeys(uint64_t Salt, const Shape &InputShape,
                            const std::vector<Region> &Input,
                            const std::vector<const Layer *> &Layers) {
  uint64_t H = hashing::hashU64(hashing::FnvOffset, Salt);
  for (int64_t D : InputShape.dims())
    H = hashing::hashU64(H, static_cast<uint64_t>(D));
  H = hashing::hashU64(H, Input.size());
  for (const Region &R : Input)
    H = hashRegion(H, R);

  std::vector<uint64_t> Chain;
  Chain.reserve(Layers.size() + 1);
  Chain.push_back(H);
  for (const Layer *L : Layers) {
    H = hashing::hashU64(H, L->fingerprint());
    Chain.push_back(H);
  }
  return Chain;
}

void PropagationCache::touchLocked(Entry &E, uint64_t Key) {
  Lru.erase(E.LruIt);
  Lru.push_front(Key);
  E.LruIt = Lru.begin();
}

void PropagationCache::publishGaugesLocked() {
  if (!metricsEnabled())
    return;
  static Gauge &BytesGauge = MetricsRegistry::global().gauge("cache.bytes");
  static Gauge &HitRateGauge =
      MetricsRegistry::global().gauge("cache.hit_rate");
  BytesGauge.set(static_cast<double>(CurBytes));
  const int64_t Lookups = Hits + Misses;
  if (Lookups > 0)
    HitRateGauge.set(static_cast<double>(Hits) /
                     static_cast<double>(Lookups));
}

size_t PropagationCache::lookupDeepest(const std::vector<uint64_t> &Chain,
                                       std::vector<Region> &State,
                                       Shape &StateShape,
                                       size_t &PrefixPeakBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Budget == 0 || Chain.size() < 2)
    return 0;
  for (size_t I = Chain.size(); I-- > 1;) {
    auto It = Map.find(Chain[I]);
    if (It == Map.end())
      continue;
    touchLocked(It->second, Chain[I]);
    State = It->second.State;
    StateShape = It->second.StateShape;
    PrefixPeakBytes = It->second.PrefixPeakBytes;
    ++Hits;
    hitsCtr().add(1);
    publishGaugesLocked();
    return I;
  }
  ++Misses;
  missesCtr().add(1);
  publishGaugesLocked();
  return 0;
}

size_t PropagationCache::peekDepth(const std::vector<uint64_t> &Chain) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Budget == 0 || Chain.size() < 2)
    return 0;
  for (size_t I = Chain.size(); I-- > 1;)
    if (Map.count(Chain[I]))
      return I;
  return 0;
}

void PropagationCache::store(uint64_t Key, const std::vector<Region> &State,
                             const Shape &StateShape,
                             size_t PrefixPeakBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Budget == 0)
    return;
  auto It = Map.find(Key);
  if (It != Map.end()) {
    // Overwrite: release the resident entry's bytes and its LRU node
    // before charging the replacement, then fall through to the normal
    // admission path. Keeping the old accounting (or worse, charging the
    // new entry on top of it) lets CurBytes drift past Budget, and a
    // stale LRU node would later be erased against the new entry.
    CurBytes -= It->second.Bytes;
    Lru.erase(It->second.LruIt);
    Map.erase(It);
  }
  const size_t B = entryBytes(State);
  if (B == 0 || B > Budget)
    return;
  while (CurBytes + B > Budget && !Lru.empty()) {
    const uint64_t Victim = Lru.back();
    Lru.pop_back();
    auto VIt = Map.find(Victim);
    CurBytes -= VIt->second.Bytes;
    Map.erase(VIt);
    ++Evictions;
    evictionsCtr().add(1);
  }
  Entry E;
  E.State = State;
  E.StateShape = StateShape;
  E.PrefixPeakBytes = PrefixPeakBytes;
  E.Bytes = B;
  Lru.push_front(Key);
  E.LruIt = Lru.begin();
  CurBytes += B;
  Map.emplace(Key, std::move(E));
  ++Insertions;
  insertionsCtr().add(1);
  if (Device)
    (void)Device->tryCharge(CurBytes);
  publishGaugesLocked();
}

} // namespace genprove
