//===- domains/region.h - GenProve's non-convex regions --------*- C++ -*-===//
///
/// \file
/// The abstract elements of the GenProve union / convex-combination domain
/// (Sections 3.1 and 4.1): weighted poly-curves and weighted boxes.
///
/// A curve region represents gamma(t) = sum_i Coeffs[i] * t^i for t in the
/// *global* input-parameter interval [T0, T1] (a sub-interval of the
/// original specification's [0, 1]). Degree 1 curves are the paper's line
/// segments; degree 2 curves are GenProveCurve's quadratics. Every affine
/// layer maps coefficients exactly, and every ReLU piece acts as a diagonal
/// linear mask, so curve pieces stay polynomial of the same degree all the
/// way through the network — this is what makes the analysis exact when no
/// relaxation is applied.
///
/// A box region is an axis-aligned box in (Center, Radius) form. Boxes are
/// created by the relaxation operators and propagated with interval
/// arithmetic.
///
/// Weights: a curve's probability mass is determined by the input CDF,
/// Weight = F(T1) - F(T0), which makes splitting exact even for non-uniform
/// input distributions (the arcsine specification of Table 7). A box
/// freezes the total mass of the regions it replaced.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_REGION_H
#define GENPROVE_DOMAINS_REGION_H

#include "src/interval/interval.h"
#include "src/tensor/tensor.h"

#include <vector>

namespace genprove {

/// Which shape a Region holds.
enum class RegionKind : uint8_t { Curve, Box };

/// One abstract element: a weighted curve piece or a weighted box. The
/// activation vectors are stored flat; the propagation engine reshapes to
/// the layer's expected activation shape as needed.
struct Region {
  RegionKind Kind = RegionKind::Curve;
  double Weight = 0.0;

  /// Which query of a batched propagation this region belongs to (0 for
  /// single-query runs). The tag is inherited by every ReLU split piece
  /// and every relaxation box, and regions with different tags are never
  /// merged, so the final state of a batched run partitions exactly into
  /// the per-query states a sequential run would have produced.
  int32_t Query = 0;

  // --- Curve fields ---
  /// [Degree+1, N] coefficient matrix in the global parameter.
  Tensor Coeffs;
  double T0 = 0.0;
  double T1 = 1.0;

  // --- Box fields ---
  Tensor Center; ///< [1, N]
  Tensor Radius; ///< [1, N]

  /// Number of representation points ("nodes"): Degree+1 for curves, 2 for
  /// boxes. The memory model charges N doubles per node.
  int64_t nodes() const {
    return Kind == RegionKind::Curve ? Coeffs.dim(0) : 2;
  }

  /// Flat activation dimensionality.
  int64_t dim() const {
    return Kind == RegionKind::Curve ? Coeffs.dim(1) : Center.dim(1);
  }

  int64_t degree() const { return Coeffs.dim(0) - 1; }
};

/// Build a degree-1 curve region (a line segment) from flat endpoints
/// [1, N] with the given global parameter interval and weight.
Region makeSegmentRegion(const Tensor &Start, const Tensor &End,
                         double Weight = 1.0, double T0 = 0.0,
                         double T1 = 1.0);

/// Build a quadratic curve region gamma(t) = A0 + A1 t + A2 t^2 from flat
/// coefficient rows [1, N].
Region makeQuadraticRegion(const Tensor &A0, const Tensor &A1,
                           const Tensor &A2, double Weight = 1.0,
                           double T0 = 0.0, double T1 = 1.0);

/// Build a box region from flat center/radius [1, N].
Region makeBoxRegion(const Tensor &Center, const Tensor &Radius,
                     double Weight);

/// Evaluate a curve region at global parameter T; returns a flat [1, N]
/// activation vector.
Tensor evalCurve(const Region &Curve, double T);

/// Component value gamma(t)_j of a curve region.
double evalCurveComponent(const Region &Curve, double T, int64_t J);

/// Per-component range of a curve over its own [T0, T1] (endpoints plus
/// the interior vertex for quadratics). Exact for degree <= 2.
Interval curveComponentRange(const Region &Curve, int64_t J);

/// Tight bounding box of any region, as a new Box region carrying the same
/// weight. (The paper's "bounding box" relaxation operator.)
Region boundingBox(const Region &R);

/// Smallest box covering both boxes; weights are added. (The paper's
/// "merge" relaxation operator.)
Region mergeBoxes(const Region &A, const Region &B);

/// Euclidean distance between the curve's endpoints; the "segment length"
/// used by the relaxation heuristic's percentile test.
double curveChordLength(const Region &Curve);

/// Roots of gamma(t)_j = 0 strictly inside (T0, T1), in increasing order.
/// Handles degree 1 and 2 (with degenerate cases).
void curveComponentRoots(const Region &Curve, int64_t J,
                         std::vector<double> &Out);

/// Roots of a general linear functional g . gamma(t) + c = 0 strictly
/// inside (T0, T1); g is a flat [1, N] tensor.
void curveFunctionalRoots(const Region &Curve, const Tensor &G, double C,
                          std::vector<double> &Out);

} // namespace genprove

#endif // GENPROVE_DOMAINS_REGION_H
