//===- domains/box_domain.cpp ---------------------------------*- C++ -*-===//

#include "src/domains/box_domain.h"

#include "src/domains/propagate.h"
#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

/// The segment's bounding box, padded in sound mode so it also covers any
/// round-to-nearest evaluation of a point on the segment (s + t*(e-s)
/// computed in doubles can overshoot the endpoint hull by a few ULPs).
void segmentBox(const Tensor &Start, const Tensor &End, Tensor &Center,
                Tensor &Radius) {
  const int64_t N = Start.numel();
  Center = Tensor({1, N});
  Radius = Tensor({1, N});
  const bool Sound = soundRoundingEnabled();
  for (int64_t J = 0; J < N; ++J) {
    if (Sound) {
      const Interval Hull{std::min(Start[J], End[J]),
                          std::max(Start[J], End[J])};
      Hull.toCenterRadius(Center[J], Radius[J]);
      const double Pad = fp::mulUp(
          8.0 * DBL_EPSILON,
          fp::addUp(std::fabs(Start[J]), std::fabs(End[J])));
      Radius[J] = fp::addUp(Radius[J], Pad);
    } else {
      Center[J] = 0.5 * (Start[J] + End[J]);
      Radius[J] = 0.5 * std::fabs(End[J] - Start[J]);
    }
  }
}

} // namespace

std::vector<ConvexResult>
analyzeBoxMulti(const std::vector<const Layer *> &Layers,
                const Shape &InputShape, const Tensor &Start,
                const Tensor &End, const std::vector<OutputSpec> &Specs,
                DeviceMemoryModel &Memory, bool Fuse) {
  Tensor Center, Radius;
  segmentBox(Start, End, Center, Radius);
  std::vector<Region> Init;
  Init.push_back(makeBoxRegion(Center, Radius, 1.0));

  PropagateConfig Config;
  Config.EnableRelax = false;
  Config.FuseRelu = Fuse;
  PropagateStats Stats;
  const std::vector<Region> Final =
      propagateRegions(Layers, InputShape, std::move(Init), Config, Memory,
                       Stats);

  ConvexResult Result;
  Result.PeakBytes = Memory.peakBytes();
  Result.MaxGenerators = 0;
  std::vector<ConvexResult> Results;
  Results.reserve(Specs.size());
  for (const OutputSpec &Spec : Specs) {
    ConvexResult PerSpec = Result;
    if (Stats.OutOfMemory) {
      PerSpec.Bounds = {0.0, 1.0, true};
    } else {
      // Lifted convex semantics: only certain containment / disjointness.
      PerSpec.Bounds = computeProbBounds(Final, Spec).deterministic();
    }
    Results.push_back(std::move(PerSpec));
  }
  return Results;
}

std::vector<std::vector<ConvexResult>>
analyzeBoxBatch(const std::vector<const Layer *> &Layers,
                const Shape &InputShape,
                const std::vector<std::pair<Tensor, Tensor>> &Segments,
                const std::vector<OutputSpec> &Specs,
                DeviceMemoryModel &Memory, bool Fuse) {
  const size_t K = Segments.size();
  std::vector<std::vector<ConvexResult>> Out(K);
  if (K == 0)
    return Out;

  // Every segment's box flows through one Query-tagged propagation; the
  // engine transforms each region independently (interval arithmetic is
  // per box), so per-query results are bit-identical to lone runs.
  std::vector<Region> Init;
  Init.reserve(K);
  for (size_t I = 0; I < K; ++I) {
    Tensor Center, Radius;
    segmentBox(Segments[I].first, Segments[I].second, Center, Radius);
    Region R = makeBoxRegion(Center, Radius, 1.0);
    R.Query = static_cast<int32_t>(I);
    Init.push_back(std::move(R));
  }

  PropagateConfig Config;
  Config.EnableRelax = false;
  Config.FuseRelu = Fuse;
  PropagateStats Stats;
  std::vector<Region> Final =
      propagateRegions(Layers, InputShape, std::move(Init), Config, Memory,
                       Stats);

  if (Stats.OutOfMemory) {
    // The joint state blew the budget: fall back to sequential
    // per-segment analyses so bounds match a caller-side loop.
    for (size_t I = 0; I < K; ++I)
      Out[I] = analyzeBoxMulti(Layers, InputShape, Segments[I].first,
                               Segments[I].second, Specs, Memory, Fuse);
    return Out;
  }

  std::vector<std::vector<Region>> PerQuery(K);
  for (Region &R : Final) {
    const size_t I = static_cast<size_t>(R.Query);
    R.Query = 0;
    PerQuery[I].push_back(std::move(R));
  }

  ConvexResult Base;
  Base.PeakBytes = Memory.peakBytes();
  Base.MaxGenerators = 0;
  for (size_t I = 0; I < K; ++I) {
    Out[I].reserve(Specs.size());
    for (const OutputSpec &Spec : Specs) {
      ConvexResult PerSpec = Base;
      PerSpec.Bounds = computeProbBounds(PerQuery[I], Spec).deterministic();
      Out[I].push_back(std::move(PerSpec));
    }
  }
  return Out;
}

ConvexResult analyzeBox(const std::vector<const Layer *> &Layers,
                        const Shape &InputShape, const Tensor &Start,
                        const Tensor &End, const OutputSpec &Spec,
                        DeviceMemoryModel &Memory, bool Fuse) {
  return analyzeBoxMulti(Layers, InputShape, Start, End, {Spec}, Memory,
                         Fuse)
      .front();
}

} // namespace genprove
