//===- domains/box_domain.cpp ---------------------------------*- C++ -*-===//

#include "src/domains/box_domain.h"

#include "src/domains/propagate.h"
#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

std::vector<ConvexResult>
analyzeBoxMulti(const std::vector<const Layer *> &Layers,
                const Shape &InputShape, const Tensor &Start,
                const Tensor &End, const std::vector<OutputSpec> &Specs,
                DeviceMemoryModel &Memory) {
  const int64_t N = Start.numel();
  Tensor Center({1, N}), Radius({1, N});
  const bool Sound = soundRoundingEnabled();
  for (int64_t J = 0; J < N; ++J) {
    if (Sound) {
      // The box must cover the exact segment AND any round-to-nearest
      // evaluation of a point on it (s + t*(e-s) computed in doubles can
      // overshoot the endpoint hull by a few ULPs), hence the small
      // magnitude-proportional pad.
      const Interval Hull{std::min(Start[J], End[J]),
                          std::max(Start[J], End[J])};
      Hull.toCenterRadius(Center[J], Radius[J]);
      const double Pad = fp::mulUp(
          8.0 * DBL_EPSILON,
          fp::addUp(std::fabs(Start[J]), std::fabs(End[J])));
      Radius[J] = fp::addUp(Radius[J], Pad);
    } else {
      Center[J] = 0.5 * (Start[J] + End[J]);
      Radius[J] = 0.5 * std::fabs(End[J] - Start[J]);
    }
  }
  std::vector<Region> Init;
  Init.push_back(makeBoxRegion(Center, Radius, 1.0));

  PropagateConfig Config;
  Config.EnableRelax = false;
  PropagateStats Stats;
  const std::vector<Region> Final =
      propagateRegions(Layers, InputShape, std::move(Init), Config, Memory,
                       Stats);

  ConvexResult Result;
  Result.PeakBytes = Memory.peakBytes();
  Result.MaxGenerators = 0;
  std::vector<ConvexResult> Results;
  Results.reserve(Specs.size());
  for (const OutputSpec &Spec : Specs) {
    ConvexResult PerSpec = Result;
    if (Stats.OutOfMemory) {
      PerSpec.Bounds = {0.0, 1.0, true};
    } else {
      // Lifted convex semantics: only certain containment / disjointness.
      PerSpec.Bounds = computeProbBounds(Final, Spec).deterministic();
    }
    Results.push_back(std::move(PerSpec));
  }
  return Results;
}

ConvexResult analyzeBox(const std::vector<const Layer *> &Layers,
                        const Shape &InputShape, const Tensor &Start,
                        const Tensor &End, const OutputSpec &Spec,
                        DeviceMemoryModel &Memory) {
  return analyzeBoxMulti(Layers, InputShape, Start, End, {Spec}, Memory)
      .front();
}

} // namespace genprove
