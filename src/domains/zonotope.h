//===- domains/zonotope.h - Zonotope / DeepZono baselines ------*- C++ -*-===//
///
/// \file
/// The convex baseline domains of the paper's Tables 2 and 8: affine forms
/// c + sum_g eps_g * G_g with eps in [-1, 1]^G. Two ReLU transformers are
/// provided:
///
///  * Zonotope [Gehr et al. 2018, AI2]: a crossing neuron is replaced by
///    the interval [0, hi] introduced as a fresh error term (looser, the
///    historical formulation);
///  * DeepZono [Singh et al. 2018]: the minimal-area parallelogram
///    y = lambda*x + mu +- mu with lambda = hi/(hi-lo), mu = -lambda*lo/2.
///
/// Both add one error term per crossing neuron, so the generator matrix
/// grows without bound — this is exactly why the paper reports 100% OOM
/// for these domains on every network (Table 8). The initial line segment
/// is represented exactly (center = midpoint, one generator = half
/// difference), so no precision is lost at the input.
///
/// Lifted probabilistically (Section 4, "Lifting"), a convex domain can
/// only ever certify l = 1 (fully contained) or u = 0 (fully disjoint);
/// anything else yields the trivial [0, 1].
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_ZONOTOPE_H
#define GENPROVE_DOMAINS_ZONOTOPE_H

#include "src/core/spec.h"
#include "src/domains/memory_model.h"
#include "src/nn/sequential.h"

#include <utility>

namespace genprove {

/// Which ReLU transformer the zonotope analysis uses.
enum class ZonotopeKind : uint8_t { Zonotope, DeepZono };

/// Result of a convex-domain analysis, lifted probabilistically.
struct ConvexResult {
  ProbBounds Bounds;       ///< {1,1}, {0,0} or {0,1} (plus OOM flag).
  size_t PeakBytes = 0;    ///< simulated device memory peak.
  int64_t MaxGenerators = 0;
};

/// Analyze the segment e1->e2 (flat [1, N] endpoints) through the layers
/// against the spec.
///
/// With \p Fuse, each Linear->ReLU layer pair streams through the fused
/// single-pass kernels of tensor/ops.h (center, generator, and — in sound
/// mode — slack/magnitude planes computed in one sweep over the weight
/// matrix, ReLU applied while the rows are cache-hot). Bounds, OOM points
/// and telemetry are bit-identical to the unfused analysis at any thread
/// count in both rounding modes; only wall-clock time changes.
ConvexResult analyzeZonotope(const std::vector<const Layer *> &Layers,
                             const Shape &InputShape, const Tensor &Start,
                             const Tensor &End, const OutputSpec &Spec,
                             ZonotopeKind Kind, DeviceMemoryModel &Memory,
                             bool Fuse = false);

/// Propagation is specification-independent: analyze once and evaluate
/// every spec on the final zonotope. Returns one ConvexResult per spec
/// (all sharing the same memory/telemetry).
std::vector<ConvexResult>
analyzeZonotopeMulti(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape, const Tensor &Start,
                     const Tensor &End, const std::vector<OutputSpec> &Specs,
                     ZonotopeKind Kind, DeviceMemoryModel &Memory,
                     bool Fuse = false);

/// Batched analysis: propagate many segments through the same pipeline at
/// once, stacking every query's center and generator rows into single
/// production-sized kernel calls, and evaluate every spec on each final
/// zonotope. Because all affine kernels are row-independent (fixed
/// ascending-k accumulation per output element, fp-contract off) and the
/// ReLU transformer runs per state, the returned bounds are bit-identical
/// to analyzeZonotopeMulti() run per segment, in both rounding modes.
///
/// The per-layer device charge is the sum of all states' charges (the
/// joint state is resident at once); when that blows the budget, the
/// whole batch falls back to sequential per-segment analyses, so bounds
/// always match a caller-side loop. Returned telemetry (PeakBytes,
/// MaxGenerators) on the batched path describes the shared run.
/// Result[i][j] is segment i against Specs[j].
std::vector<std::vector<ConvexResult>>
analyzeZonotopeBatch(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape,
                     const std::vector<std::pair<Tensor, Tensor>> &Segments,
                     const std::vector<OutputSpec> &Specs, ZonotopeKind Kind,
                     DeviceMemoryModel &Memory, bool Fuse = false);

/// Per-dimension interval hull of the final zonotope, rounded outward.
/// Used by the soundness audit (src/audit) to check containment of
/// concrete forward passes.
struct ZonotopeOutputBounds {
  Tensor Lo, Hi; ///< [1, N] each; empty when OutOfMemory.
  bool OutOfMemory = false;
};

ZonotopeOutputBounds
zonotopeOutputBounds(const std::vector<const Layer *> &Layers,
                     const Shape &InputShape, const Tensor &Start,
                     const Tensor &End, ZonotopeKind Kind,
                     DeviceMemoryModel &Memory, bool Fuse = false);

} // namespace genprove

#endif // GENPROVE_DOMAINS_ZONOTOPE_H
