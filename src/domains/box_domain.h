//===- domains/box_domain.h - Interval/Box baseline ------------*- C++ -*-===//
///
/// \file
/// The Box domain (plain interval arithmetic), the cheapest and least
/// precise baseline in Tables 2 and 8. The initial segment is relaxed to
/// its bounding box — the only domain for which the input representation
/// itself loses precision.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_BOX_DOMAIN_H
#define GENPROVE_DOMAINS_BOX_DOMAIN_H

#include "src/domains/zonotope.h"

namespace genprove {

/// Analyze the segment e1->e2 with pure interval arithmetic. With \p Fuse
/// the underlying propagation streams Linear->ReLU pairs through the
/// fused box kernel (PropagateConfig::FuseRelu); bounds and OOM points
/// are bit-identical to the unfused analysis at any thread count in both
/// rounding modes.
ConvexResult analyzeBox(const std::vector<const Layer *> &Layers,
                        const Shape &InputShape, const Tensor &Start,
                        const Tensor &End, const OutputSpec &Spec,
                        DeviceMemoryModel &Memory, bool Fuse = false);

/// One propagation, many specs (see analyzeZonotopeMulti).
std::vector<ConvexResult>
analyzeBoxMulti(const std::vector<const Layer *> &Layers,
                const Shape &InputShape, const Tensor &Start,
                const Tensor &End, const std::vector<OutputSpec> &Specs,
                DeviceMemoryModel &Memory, bool Fuse = false);

/// Batched analysis: all segments' boxes flow through one Query-tagged
/// propagateRegions() call (see analyzeZonotopeBatch for the memory and
/// bit-identity contract; on joint OOM the batch falls back to sequential
/// per-segment analyses). Result[i][j] is segment i against Specs[j].
std::vector<std::vector<ConvexResult>>
analyzeBoxBatch(const std::vector<const Layer *> &Layers,
                const Shape &InputShape,
                const std::vector<std::pair<Tensor, Tensor>> &Segments,
                const std::vector<OutputSpec> &Specs,
                DeviceMemoryModel &Memory, bool Fuse = false);

} // namespace genprove

#endif // GENPROVE_DOMAINS_BOX_DOMAIN_H
