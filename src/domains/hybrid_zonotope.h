//===- domains/hybrid_zonotope.h - HybridZono baseline ---------*- C++ -*-===//
///
/// \file
/// HybridZono (Mirman et al. 2018, DiffAI): a zonotope with a fixed set of
/// generators plus a per-dimension box slack. ReLU relaxation error is
/// folded into the box term instead of fresh generators, so memory stays
/// constant (the domain scales — Table 8 shows 0% OOM) at the cost of
/// precision (widths near 1 on generative specifications).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_HYBRID_ZONOTOPE_H
#define GENPROVE_DOMAINS_HYBRID_ZONOTOPE_H

#include "src/domains/zonotope.h"

namespace genprove {

/// Analyze the segment e1->e2 with the hybrid zonotope domain. With
/// \p Fuse, Linear->ReLU pairs stream through the fused single-pass
/// kernels of tensor/ops.h (see analyzeZonotope); bounds, OOM points and
/// telemetry are bit-identical to the unfused analysis at any thread
/// count in both rounding modes.
ConvexResult analyzeHybridZonotope(const std::vector<const Layer *> &Layers,
                                   const Shape &InputShape,
                                   const Tensor &Start, const Tensor &End,
                                   const OutputSpec &Spec,
                                   DeviceMemoryModel &Memory,
                                   bool Fuse = false);

/// One propagation, many specs (see analyzeZonotopeMulti).
std::vector<ConvexResult> analyzeHybridZonotopeMulti(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const Tensor &Start, const Tensor &End,
    const std::vector<OutputSpec> &Specs, DeviceMemoryModel &Memory,
    bool Fuse = false);

/// Batched analysis over many segments (see analyzeZonotopeBatch for the
/// memory and bit-identity contract; on joint OOM the batch falls back to
/// sequential per-segment analyses). Result[i][j] is segment i against
/// Specs[j].
std::vector<std::vector<ConvexResult>> analyzeHybridZonotopeBatch(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const std::vector<std::pair<Tensor, Tensor>> &Segments,
    const std::vector<OutputSpec> &Specs, DeviceMemoryModel &Memory,
    bool Fuse = false);

/// Per-dimension interval hull of the final hybrid state, rounded outward
/// (see zonotopeOutputBounds). Used by the soundness audit (src/audit).
ZonotopeOutputBounds
hybridZonotopeOutputBounds(const std::vector<const Layer *> &Layers,
                           const Shape &InputShape, const Tensor &Start,
                           const Tensor &End, DeviceMemoryModel &Memory,
                           bool Fuse = false);

} // namespace genprove

#endif // GENPROVE_DOMAINS_HYBRID_ZONOTOPE_H
