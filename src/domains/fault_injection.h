//===- domains/fault_injection.h - Deterministic fault injection -*- C++ -*-===//
///
/// \file
/// A deterministic fault-injection harness for the propagation engine, so
/// every degradation path — checkpoint rollback, local boxing, the full
/// interval fallback, deadline expiry, non-finite quarantine — is
/// exercised by ctest instead of depending on a lucky memory budget.
///
/// Three fault families, all reproducible:
///
///  * forced OOM: the injector installs a charge interceptor on the
///    DeviceMemoryModel that fails the first FaultPlan::OomFireCount
///    charges issued while the engine is inside layer OomAtLayer;
///  * non-finite poisoning: after layer NanAtLayer the injector overwrites
///    one coefficient of every region with a NaN, standing in for corrupt
///    weights or activations — the engine must detect and quarantine;
///  * simulated clock skew: the injector exposes a manual clock that
///    advances ClockSkewSecondsPerLayer at every (non-fallback) layer
///    boundary, which makes deadline tests exact instead of timing-flaky.
///
/// The injector is plugged into a propagation through
/// ResilienceConfig::Faults; production runs leave it null and pay only a
/// pointer test per layer. docs/ROBUSTNESS.md shows how to drive it.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_FAULT_INJECTION_H
#define GENPROVE_DOMAINS_FAULT_INJECTION_H

#include "src/domains/memory_model.h"
#include "src/domains/region.h"

#include <functional>
#include <vector>

namespace genprove {

/// What to inject, and where. Defaults inject nothing.
struct FaultPlan {
  /// Layer index at which device charges are forced to fail (-1 = never).
  int64_t OomAtLayer = -1;
  /// How many charges to fail at OomAtLayer: 1 exercises one rollback +
  /// local boxing; a large value exhausts the local retries and drives the
  /// engine down to the full interval fallback.
  int64_t OomFireCount = 1;
  /// Layer index after which every region gets a NaN written into its
  /// representation (-1 = never). Models corrupt weights or activations.
  int64_t NanAtLayer = -1;
  /// Seconds the injected clock advances at each layer boundary (layers
  /// running under the interval fallback are treated as free, matching
  /// their near-zero real cost).
  double ClockSkewSecondsPerLayer = 0.0;
  /// Initial reading of the injected clock.
  double ClockStartSeconds = 0.0;
};

/// Deterministic fault injector; one instance drives one propagation.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan Plan = {}) : Plan(Plan) {
    ClockSeconds = Plan.ClockStartSeconds;
  }

  /// Install the forced-OOM interceptor on a memory model. The injector
  /// must outlive the model's use.
  void arm(DeviceMemoryModel &Memory);

  /// Engine callback at each layer boundary. Advances the injected clock
  /// (unless the layer runs under the cheap interval fallback) and records
  /// the layer index consulted by the charge interceptor.
  void beginLayer(int64_t Layer, bool FallbackCheap);

  /// Consulted by the charge interceptor: force a failure?
  bool shouldFailCharge();

  /// Should regions be poisoned after this layer?
  bool shouldPoison(int64_t Layer) const {
    return Plan.NanAtLayer == Layer;
  }

  /// Overwrite one representation value of every region with NaN.
  void poisonRegions(std::vector<Region> &Regions) const;

  /// Current reading of the injected clock, in seconds.
  double nowSeconds() const { return ClockSeconds; }

  /// The injected clock as a ResilienceConfig::Clock function. Only
  /// meaningful when ClockSkewSecondsPerLayer is set; otherwise the clock
  /// never advances.
  std::function<double()> clock() {
    return [this] { return ClockSeconds; };
  }

  /// Charges failed so far (telemetry for tests).
  int64_t injectedOoms() const { return OomsFired; }

  const FaultPlan &plan() const { return Plan; }

private:
  FaultPlan Plan;
  int64_t CurrentLayer = -1;
  int64_t OomsFired = 0;
  double ClockSeconds = 0.0;
};

/// True when every value of every region (curve coefficients, box centers
/// and radii) is finite. The engine's quarantine check.
bool regionIsFinite(const Region &R);

} // namespace genprove

#endif // GENPROVE_DOMAINS_FAULT_INJECTION_H
