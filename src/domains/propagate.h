//===- domains/propagate.h - GenProve propagation engine -------*- C++ -*-===//
///
/// \file
/// The propagation engine behind both deterministic and probabilistic
/// GenProve (the paper's Algorithm 1, generalized from line segments to
/// degree-<=2 parametric curves):
///
///  * affine layers map curve coefficients exactly (bias to the constant
///    row, linear part to the others) and boxes by interval arithmetic;
///  * ReLU layers split every curve at the component zero crossings inside
///    its parameter interval and apply the per-piece sign mask, which is
///    exact; boxes go through interval ReLU;
///  * before each convolutional layer, the Section 3.1 relaxation heuristic
///    may replace runs of short pieces with weighted bounding boxes;
///  * after every layer the abstract state is charged to the simulated
///    device memory model; exceeding the budget aborts with OOM, exactly
///    the failure mode the paper's Tables 3 and 8 report.
///
/// Weights of curve pieces are recomputed from the input-parameter CDF
/// (uniform by default, arcsine for the Table 7 specification), which keeps
/// probabilistic splitting exact; boxes freeze the mass of whatever they
/// replaced.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_PROPAGATE_H
#define GENPROVE_DOMAINS_PROPAGATE_H

#include "src/domains/memory_model.h"
#include "src/domains/region.h"
#include "src/domains/relaxation.h"
#include "src/nn/sequential.h"

#include <functional>

namespace genprove {

/// Cumulative distribution function of the input parameter on [0, 1].
using ParamCdf = std::function<double(double)>;

/// Engine configuration.
struct PropagateConfig {
  RelaxConfig Relax;
  bool EnableRelax = true;
  ParamCdf Cdf;             ///< empty = uniform (identity CDF).
  double SplitEps = 1e-9;   ///< minimum gap between split points.
};

/// Display name of a layer kind for telemetry ("Linear", "ReLU", ...).
const char *layerKindName(Layer::Kind K);

/// One row of the per-layer telemetry timeline: what the abstract state
/// looked like entering and leaving each layer, and what the layer cost.
/// ChargedBytes is the simulated-device charge for the layer's output
/// state (nodes x activation-dim x sizeof(double)); its maximum over the
/// timeline is the propagation's device peak whenever the input charge
/// does not dominate.
struct LayerRecord {
  int64_t Index = 0;
  const char *Kind = ""; ///< static string from layerKindName()
  int64_t RegionsIn = 0;
  int64_t RegionsOut = 0;
  int64_t NodesIn = 0;
  int64_t NodesOut = 0;
  int64_t Splits = 0; ///< ReLU splits performed inside this layer
  int64_t Boxed = 0;  ///< regions boxed by relaxation before this layer
  size_t ChargedBytes = 0;
  double Seconds = 0.0;
};

/// Engine telemetry for the scalability tables. The aggregate fields are
/// projections of the Layers timeline: MaxRegions/MaxNodes are the maxima
/// of the per-layer outputs, NumSplits/NumBoxed their sums.
struct PropagateStats {
  int64_t MaxRegions = 0;
  int64_t MaxNodes = 0;
  int64_t NumSplits = 0;
  int64_t NumBoxed = 0;
  bool OutOfMemory = false;
  /// Index of the layer whose charge blew the budget; -1 when no OOM or
  /// when already the initial input state did not fit.
  int64_t OomLayer = -1;
  std::vector<LayerRecord> Layers;
};

/// Push \p Regions through \p Layers. \p InputShape is the single-sample
/// activation shape of the first layer (e.g. {1, Latent}). On OOM the
/// result is empty and Stats.OutOfMemory is set.
std::vector<Region> propagateRegions(const std::vector<const Layer *> &Layers,
                                     const Shape &InputShape,
                                     std::vector<Region> Regions,
                                     const PropagateConfig &Config,
                                     DeviceMemoryModel &Memory,
                                     PropagateStats &Stats);

} // namespace genprove

#endif // GENPROVE_DOMAINS_PROPAGATE_H
