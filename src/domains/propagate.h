//===- domains/propagate.h - GenProve propagation engine -------*- C++ -*-===//
///
/// \file
/// The propagation engine behind both deterministic and probabilistic
/// GenProve (the paper's Algorithm 1, generalized from line segments to
/// degree-<=2 parametric curves):
///
///  * affine layers map curve coefficients exactly (bias to the constant
///    row, linear part to the others) and boxes by interval arithmetic;
///  * ReLU layers split every curve at the component zero crossings inside
///    its parameter interval and apply the per-piece sign mask, which is
///    exact; boxes go through interval ReLU;
///  * before each convolutional layer, the Section 3.1 relaxation heuristic
///    may replace runs of short pieces with weighted bounding boxes;
///  * after every layer the abstract state is charged to the simulated
///    device memory model; exceeding the budget aborts with OOM, exactly
///    the failure mode the paper's Tables 3 and 8 report.
///
/// Weights of curve pieces are recomputed from the input-parameter CDF
/// (uniform by default, arcsine for the Table 7 specification), which keeps
/// probabilistic splitting exact; boxes freeze the mass of whatever they
/// replaced.
///
/// With ResilienceConfig::Enabled the engine never aborts: the abstract
/// state is checkpointed at every layer boundary, an OOM (real or
/// fault-injected) rolls back to the checkpoint and boxes the lowest-mass
/// pieces until the charge fits (the Appendix C p/k escalation applied
/// *locally*), a wall-clock deadline lifts the remaining pipeline to
/// interval/box propagation, and non-finite regions are quarantined with
/// their mass tracked — so every propagation ends in a sound, possibly
/// widened state flagged Degraded. docs/ROBUSTNESS.md gives the ladder and
/// the soundness argument for each rung.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_PROPAGATE_H
#define GENPROVE_DOMAINS_PROPAGATE_H

#include "src/domains/memory_model.h"
#include "src/domains/region.h"
#include "src/domains/relaxation.h"
#include "src/nn/sequential.h"

#include <functional>

namespace genprove {

class FaultInjector;
class PropagationCache;

/// Cumulative distribution function of the input parameter on [0, 1].
using ParamCdf = std::function<double(double)>;

/// How far down the degradation ladder a propagation had to go. Ordered:
/// higher rungs are coarser (and therefore always cheaper but wider).
enum class DegradeRung : uint8_t {
  None = 0,     ///< exact / configured relaxation only
  LocalBox = 1, ///< checkpoint rollback + lowest-mass boxing at one layer
  FullBox = 2,  ///< remaining pipeline lifted to a single interval box
};

/// Display name of a rung ("-", "local", "box").
const char *degradeRungName(DegradeRung R);

/// The resilience layer around the engine: checkpointed in-place
/// degradation, deadlines and the interval fallback. Disabled by default,
/// in which case the engine keeps the paper's abort-on-OOM behaviour.
struct ResilienceConfig {
  bool Enabled = false;
  /// Wall-clock budget for one propagation, in seconds; 0 = none. When it
  /// expires (checked at layer boundaries) the remaining pipeline runs at
  /// the FullBox rung, so the run finishes within the deadline plus one
  /// layer's slack.
  double DeadlineSeconds = 0.0;
  /// Clock used for deadline checks; empty = steady wall clock. Tests
  /// install FaultInjector::clock() for deterministic skew.
  std::function<double()> Clock;
  /// Checkpoint rollbacks allowed per layer before the engine gives up on
  /// local boxing and lifts the state to the FullBox rung.
  int64_t MaxLayerRetries = 6;
  /// Quarantine regions containing NaN/Inf instead of propagating them;
  /// their mass widens the final bounds (see PropagateStats).
  bool DetectNonFinite = true;
  /// Lift the initial state straight to the FullBox rung before layer 0.
  /// The whole pipeline then runs budget-exempt interval arithmetic — the
  /// cheapest sound analysis available. The shard supervisor sets this on
  /// last-resort retries so a repeatedly-crashing worker converges to a
  /// run that cannot exhaust memory.
  bool StartAtFullBox = false;
  /// Deterministic fault injection (tests and the CI smoke job); null in
  /// production.
  FaultInjector *Faults = nullptr;
};

/// Engine configuration.
struct PropagateConfig {
  RelaxConfig Relax;
  bool EnableRelax = true;
  ParamCdf Cdf;             ///< empty = uniform (identity CDF).
  double SplitEps = 1e-9;   ///< minimum gap between split points.
  ResilienceConfig Resilience;
  /// Optional memoizing abstract-state cache (domains/prop_cache.h). Only
  /// consulted on non-resilient, fault-free runs — a warm start replays
  /// the prefix's peak device charge and is bit-identical to a cold run.
  PropagationCache *Cache = nullptr;
  /// Caller-provided salt folded into the cache key chain. Must separate
  /// every knob the transformers depend on that PropagateConfig itself
  /// cannot hash (the input-distribution identity behind Cdf, the
  /// caller's domain tag, ...); see cacheSaltForConfig().
  uint64_t CacheSalt = 0;
  /// Stream each Linear->ReLU layer pair through one fused kernel: the
  /// affine map of box regions computes center, radius and (sound mode)
  /// magnitude images in a single pass over the weight matrix and applies
  /// the interval ReLU while the rows are cache-hot; the following ReLU
  /// layer then skips already-rectified boxes (curve splitting is
  /// unaffected). Bit-identical to the unfused path at any thread count
  /// in both rounding modes. Silently ignored on resilient or
  /// fault-injected runs — the checkpoint/rollback machinery assumes
  /// layer boundaries hold un-advanced states — and fused runs use a
  /// distinct propagation-cache salt, with no states memoized at fused
  /// pair boundaries (they would be half-advanced).
  bool FuseRelu = false;
};

/// Fold the hashable engine knobs (relaxation config, SplitEps, sound
/// rounding mode) into a cache salt, together with \p CallerTag — the
/// caller's hash of everything the engine cannot see: the identity of the
/// input distribution behind Cdf and the abstract-domain tag.
uint64_t cacheSaltForConfig(const PropagateConfig &Config,
                            uint64_t CallerTag);

/// Display name of a layer kind for telemetry ("Linear", "ReLU", ...).
const char *layerKindName(Layer::Kind K);

/// One row of the per-layer telemetry timeline: what the abstract state
/// looked like entering and leaving each layer, and what the layer cost.
/// ChargedBytes is the simulated-device charge for the layer's output
/// state (nodes x activation-dim x sizeof(double)); its maximum over the
/// timeline is the propagation's device peak whenever the input charge
/// does not dominate.
struct LayerRecord {
  int64_t Index = 0;
  const char *Kind = ""; ///< static string from layerKindName()
  int64_t RegionsIn = 0;
  int64_t RegionsOut = 0;
  int64_t NodesIn = 0;
  int64_t NodesOut = 0;
  int64_t Splits = 0; ///< ReLU splits performed inside this layer
  int64_t Boxed = 0;  ///< regions boxed by relaxation before this layer
  size_t ChargedBytes = 0;
  double Seconds = 0.0;
  /// Degradation rung the layer finally executed at; None for clean runs.
  DegradeRung Rung = DegradeRung::None;
  /// Checkpoint rollbacks spent on this layer (each rollback re-executes
  /// only this layer, never its predecessors).
  int64_t Rollbacks = 0;
};

/// Engine telemetry for the scalability tables. The aggregate fields are
/// projections of the Layers timeline: MaxRegions/MaxNodes are the maxima
/// of the per-layer outputs, NumSplits/NumBoxed their sums.
struct PropagateStats {
  int64_t MaxRegions = 0;
  int64_t MaxNodes = 0;
  int64_t NumSplits = 0;
  int64_t NumBoxed = 0;
  bool OutOfMemory = false;
  /// Index of the layer whose charge blew the budget; -1 when no OOM or
  /// when already the initial input state did not fit.
  int64_t OomLayer = -1;
  // --- Resilience telemetry (all zero/false on non-degraded runs) ---
  /// The result is sound but wider than the configured analysis would have
  /// produced: some rung above None fired, a deadline expired, or regions
  /// were quarantined.
  bool Degraded = false;
  DegradeRung Rung = DegradeRung::None; ///< highest rung reached
  int64_t Rollbacks = 0;          ///< checkpoint rollbacks performed
  int64_t FallbackBoxLayers = 0;  ///< layers executed at the FullBox rung
  bool DeadlineHit = false;
  int64_t QuarantinedRegions = 0; ///< non-finite regions dropped
  /// Probability mass of quarantined regions. Sound bound computations
  /// must widen the upper bound by this mass (the quarantined image could
  /// lie anywhere).
  double QuarantinedMass = 0.0;
  /// Layers skipped by a propagation-cache warm start. Skipped layers
  /// produce no LayerRecord and contribute no splits — the bounds are
  /// still bit-identical to a cold run's.
  int64_t CacheWarmLayers = 0;
  std::vector<LayerRecord> Layers;
};

/// Push \p Regions through \p Layers. \p InputShape is the single-sample
/// activation shape of the first layer (e.g. {1, Latent}). On OOM the
/// result is empty and Stats.OutOfMemory is set — unless
/// Config.Resilience.Enabled, in which case the engine degrades in place
/// and always returns a sound (possibly boxed) state.
std::vector<Region> propagateRegions(const std::vector<const Layer *> &Layers,
                                     const Shape &InputShape,
                                     std::vector<Region> Regions,
                                     const PropagateConfig &Config,
                                     DeviceMemoryModel &Memory,
                                     PropagateStats &Stats);

} // namespace genprove

#endif // GENPROVE_DOMAINS_PROPAGATE_H
