//===- domains/fault_injection.cpp ----------------------------*- C++ -*-===//

#include "src/domains/fault_injection.h"

#include <cmath>
#include <limits>

namespace genprove {

void FaultInjector::arm(DeviceMemoryModel &Memory) {
  Memory.setInterceptor(
      [this](size_t /*Bytes*/) { return shouldFailCharge(); });
}

void FaultInjector::beginLayer(int64_t Layer, bool FallbackCheap) {
  // Retries of the same layer re-enter here; the clock only advances on
  // the first visit so an injected-clock deadline run stays deterministic
  // regardless of how many rollbacks the degradation ladder performs.
  if (Layer > CurrentLayer && !FallbackCheap)
    ClockSeconds += Plan.ClockSkewSecondsPerLayer;
  CurrentLayer = Layer;
}

bool FaultInjector::shouldFailCharge() {
  if (Plan.OomAtLayer < 0 || CurrentLayer != Plan.OomAtLayer)
    return false;
  if (OomsFired >= Plan.OomFireCount)
    return false;
  ++OomsFired;
  return true;
}

void FaultInjector::poisonRegions(std::vector<Region> &Regions) const {
  const double Nan = std::numeric_limits<double>::quiet_NaN();
  for (Region &R : Regions) {
    if (R.Kind == RegionKind::Curve) {
      if (R.Coeffs.numel() > 0)
        R.Coeffs[0] = Nan;
    } else if (R.Center.numel() > 0) {
      R.Center[0] = Nan;
    }
  }
}

bool regionIsFinite(const Region &R) {
  if (R.Kind == RegionKind::Curve) {
    for (int64_t I = 0; I < R.Coeffs.numel(); ++I)
      if (!std::isfinite(R.Coeffs[I]))
        return false;
    return true;
  }
  for (int64_t I = 0; I < R.Center.numel(); ++I)
    if (!std::isfinite(R.Center[I]) || !std::isfinite(R.Radius[I]))
      return false;
  return true;
}

} // namespace genprove
