//===- domains/region.cpp -------------------------------------*- C++ -*-===//

#include "src/domains/region.h"

#include "src/util/error.h"
#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

Region makeSegmentRegion(const Tensor &Start, const Tensor &End, double Weight,
                         double T0, double T1) {
  check(Start.numel() == End.numel(), "segment endpoint dim mismatch");
  check(T1 > T0, "segment parameter interval must be non-degenerate");
  const int64_t N = Start.numel();
  Region R;
  R.Kind = RegionKind::Curve;
  R.Weight = Weight;
  R.T0 = T0;
  R.T1 = T1;
  // Endpoints parameterized over the global interval:
  // gamma(t) = Start + (End - Start) * (t - T0) / (T1 - T0).
  R.Coeffs = Tensor({2, N});
  const double Inv = 1.0 / (T1 - T0);
  for (int64_t J = 0; J < N; ++J) {
    const double Slope = (End[J] - Start[J]) * Inv;
    R.Coeffs.at(1, J) = Slope;
    R.Coeffs.at(0, J) = Start[J] - Slope * T0;
  }
  return R;
}

Region makeQuadraticRegion(const Tensor &A0, const Tensor &A1,
                           const Tensor &A2, double Weight, double T0,
                           double T1) {
  check(A0.numel() == A1.numel() && A1.numel() == A2.numel(),
        "quadratic coefficient dim mismatch");
  const int64_t N = A0.numel();
  Region R;
  R.Kind = RegionKind::Curve;
  R.Weight = Weight;
  R.T0 = T0;
  R.T1 = T1;
  R.Coeffs = Tensor({3, N});
  for (int64_t J = 0; J < N; ++J) {
    R.Coeffs.at(0, J) = A0[J];
    R.Coeffs.at(1, J) = A1[J];
    R.Coeffs.at(2, J) = A2[J];
  }
  return R;
}

Region makeBoxRegion(const Tensor &Center, const Tensor &Radius,
                     double Weight) {
  check(Center.numel() == Radius.numel(), "box center/radius dim mismatch");
  Region R;
  R.Kind = RegionKind::Box;
  R.Weight = Weight;
  R.Center = Center.reshaped({1, Center.numel()});
  R.Radius = Radius.reshaped({1, Radius.numel()});
  return R;
}

Tensor evalCurve(const Region &Curve, double T) {
  check(Curve.Kind == RegionKind::Curve, "evalCurve on a box");
  const int64_t D = Curve.Coeffs.dim(0);
  const int64_t N = Curve.Coeffs.dim(1);
  Tensor Out({1, N});
  double Tp = 1.0;
  for (int64_t I = 0; I < D; ++I) {
    for (int64_t J = 0; J < N; ++J)
      Out[J] += Curve.Coeffs.at(I, J) * Tp;
    Tp *= T;
  }
  return Out;
}

double evalCurveComponent(const Region &Curve, double T, int64_t J) {
  const int64_t D = Curve.Coeffs.dim(0);
  double Value = 0.0;
  double Tp = 1.0;
  for (int64_t I = 0; I < D; ++I) {
    Value += Curve.Coeffs.at(I, J) * Tp;
    Tp *= T;
  }
  return Value;
}

Interval curveComponentRange(const Region &Curve, int64_t J) {
  const double V0 = evalCurveComponent(Curve, Curve.T0, J);
  const double V1 = evalCurveComponent(Curve, Curve.T1, J);
  Interval Range{std::min(V0, V1), std::max(V0, V1)};
  if (Curve.degree() >= 2) {
    const double A2 = Curve.Coeffs.at(2, J);
    const double A1 = Curve.Coeffs.at(1, J);
    if (A2 != 0.0) {
      const double Vertex = -A1 / (2.0 * A2);
      if (Vertex > Curve.T0 && Vertex < Curve.T1) {
        const double Vv = evalCurveComponent(Curve, Vertex, J);
        Range.Lo = std::min(Range.Lo, Vv);
        Range.Hi = std::max(Range.Hi, Vv);
      }
    }
  }
  if (soundRoundingEnabled()) {
    // Inflate by a bound on the round-to-nearest evaluation error of the
    // degree <= 2 polynomial at the endpoints and the vertex: a handful
    // of operations on terms no larger than sum_d |a_d| * M^d with
    // M = max(1, |T0|, |T1|).
    const double M =
        std::max({1.0, std::fabs(Curve.T0), std::fabs(Curve.T1)});
    double Mag = 0.0;
    double Mp = 1.0;
    for (int64_t D = 0; D <= Curve.degree(); ++D) {
      Mag = fp::addUp(Mag, fp::mulUp(std::fabs(Curve.Coeffs.at(D, J)), Mp));
      Mp = fp::mulUp(Mp, M);
    }
    const double E = fp::mulUp(8.0 * DBL_EPSILON, Mag);
    Range.Lo = fp::subDown(Range.Lo, E);
    Range.Hi = fp::addUp(Range.Hi, E);
  }
  return Range;
}

Region boundingBox(const Region &R) {
  if (R.Kind == RegionKind::Box)
    return R;
  const int64_t N = R.dim();
  Tensor Center({1, N}), Radius({1, N});
  for (int64_t J = 0; J < N; ++J) {
    const Interval Range = curveComponentRange(R, J);
    Range.toCenterRadius(Center[J], Radius[J]);
  }
  Region Box = makeBoxRegion(Center, Radius, R.Weight);
  Box.Query = R.Query;
  return Box;
}

Region mergeBoxes(const Region &A, const Region &B) {
  check(A.Kind == RegionKind::Box && B.Kind == RegionKind::Box,
        "mergeBoxes requires boxes");
  const int64_t N = A.dim();
  check(B.dim() == N, "mergeBoxes dim mismatch");
  Tensor Center({1, N}), Radius({1, N});
  const bool Sound = soundRoundingEnabled();
  for (int64_t J = 0; J < N; ++J) {
    if (Sound) {
      const Interval Hull{std::min(fp::subDown(A.Center[J], A.Radius[J]),
                                   fp::subDown(B.Center[J], B.Radius[J])),
                          std::max(fp::addUp(A.Center[J], A.Radius[J]),
                                   fp::addUp(B.Center[J], B.Radius[J]))};
      Hull.toCenterRadius(Center[J], Radius[J]);
    } else {
      const double Lo = std::min(A.Center[J] - A.Radius[J],
                                 B.Center[J] - B.Radius[J]);
      const double Hi = std::max(A.Center[J] + A.Radius[J],
                                 B.Center[J] + B.Radius[J]);
      Center[J] = 0.5 * (Lo + Hi);
      Radius[J] = 0.5 * (Hi - Lo);
    }
  }
  const double Weight = Sound ? fp::addUp(A.Weight, B.Weight)
                              : A.Weight + B.Weight;
  Region Box = makeBoxRegion(Center, Radius, Weight);
  // Callers only merge regions of the same query; keep the tag.
  Box.Query = A.Query;
  return Box;
}

double curveChordLength(const Region &Curve) {
  const Tensor P0 = evalCurve(Curve, Curve.T0);
  const Tensor P1 = evalCurve(Curve, Curve.T1);
  double Acc = 0.0;
  for (int64_t J = 0; J < P0.numel(); ++J) {
    const double D = P1[J] - P0[J];
    Acc += D * D;
  }
  return std::sqrt(Acc);
}

namespace {

/// Append X to Out if strictly inside (Lo, Hi).
void pushIfInside(double X, double Lo, double Hi, std::vector<double> &Out) {
  if (X > Lo && X < Hi && std::isfinite(X))
    Out.push_back(X);
}

/// Roots of A2 t^2 + A1 t + A0 = 0 strictly inside (Lo, Hi).
void polyRoots(double A0, double A1, double A2, double Lo, double Hi,
               std::vector<double> &Out) {
  if (A2 == 0.0) {
    if (A1 != 0.0)
      pushIfInside(-A0 / A1, Lo, Hi, Out);
    return;
  }
  const double Disc = A1 * A1 - 4.0 * A2 * A0;
  if (Disc < 0.0)
    return;
  const double SqrtDisc = std::sqrt(Disc);
  // Numerically stable quadratic roots.
  const double Q = -0.5 * (A1 + (A1 >= 0.0 ? SqrtDisc : -SqrtDisc));
  if (Q != 0.0)
    pushIfInside(A0 / Q, Lo, Hi, Out);
  pushIfInside(Q / A2, Lo, Hi, Out);
}

} // namespace

void curveComponentRoots(const Region &Curve, int64_t J,
                         std::vector<double> &Out) {
  const double A0 = Curve.Coeffs.at(0, J);
  const double A1 = Curve.degree() >= 1 ? Curve.Coeffs.at(1, J) : 0.0;
  const double A2 = Curve.degree() >= 2 ? Curve.Coeffs.at(2, J) : 0.0;
  polyRoots(A0, A1, A2, Curve.T0, Curve.T1, Out);
}

void curveFunctionalRoots(const Region &Curve, const Tensor &G, double C,
                          std::vector<double> &Out) {
  check(G.numel() == Curve.dim(), "functional dim mismatch");
  double A0 = C, A1 = 0.0, A2 = 0.0;
  for (int64_t J = 0; J < G.numel(); ++J) {
    A0 += G[J] * Curve.Coeffs.at(0, J);
    if (Curve.degree() >= 1)
      A1 += G[J] * Curve.Coeffs.at(1, J);
    if (Curve.degree() >= 2)
      A2 += G[J] * Curve.Coeffs.at(2, J);
  }
  polyRoots(A0, A1, A2, Curve.T0, Curve.T1, Out);
}

} // namespace genprove
