//===- domains/relaxation.h - The Section 3.1 relaxation heuristic -*- C++ -*-===//
///
/// \file
/// GenProve's adaptive relaxation (Section 3.1): before each convolutional
/// layer, chains of connected curve pieces with more than NodeThreshold
/// nodes are traversed in parameter order; short pieces (length at or below
/// the p-th percentile of chain lengths) are replaced by their bounding
/// boxes, adjacent boxes created in one traversal step are merged, the next
/// piece is skipped, and the traversal restarts — until the chain ends or
/// the per-step endpoint budget t/k is exhausted.
///
/// Setting RelaxPercent = 0 disables all boxing (every length is strictly
/// above the 0-th percentile), which reduces the analysis to the exact
/// method of Sotoudeh & Thakur; relaxing the initial segment entirely
/// reduces it to interval arithmetic. Weights are preserved: a box carries
/// the total mass of the pieces it replaced (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_RELAXATION_H
#define GENPROVE_DOMAINS_RELAXATION_H

#include "src/domains/region.h"

namespace genprove {

/// Heuristic parameters: GenProve^p_k in the paper's notation.
struct RelaxConfig {
  double RelaxPercent = 0.0;   ///< p: percentile of chain lengths to box.
  double ClusterK = 100.0;     ///< k: per-step endpoint budget is t/k.
  int64_t NodeThreshold = 1000; ///< chains at or below this are left exact.
};

/// Apply the relaxation heuristic in place. Each query's curve regions
/// form one connected chain processed in parameter order; batched states
/// (regions with differing Query tags) are grouped by tag and each group
/// relaxed independently, exactly as a sequential per-query run would.
/// Existing boxes are left untouched (they are already relaxed).
void relaxRegions(std::vector<Region> &Regions, const RelaxConfig &Config);

/// Total node count of a region list (the memory model's unit).
int64_t totalNodes(const std::vector<Region> &Regions);

/// Emergency coarsening for the resilience layer: replace the lowest-mass
/// curve pieces with bounding boxes, merging all boxes created by one call
/// into a single box, until the total node count is at most TargetNodes.
/// If boxing every curve is not enough, pre-existing boxes are merged in
/// as well (the state then collapses toward one interval box). Section 4.1
/// weights are preserved exactly: a box carries the total mass of what it
/// replaced. Returns true when the state changed.
bool boxLowestMassRegions(std::vector<Region> &Regions, int64_t TargetNodes);

} // namespace genprove

#endif // GENPROVE_DOMAINS_RELAXATION_H
