//===- domains/screen.cpp -------------------------------------*- C++ -*-===//

#include "src/domains/screen.h"

#include "src/nn/linear.h"
#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

const char *screenVerdictName(ScreenVerdict V) {
  switch (V) {
  case ScreenVerdict::Inside:
    return "inside";
  case ScreenVerdict::Outside:
    return "outside";
  case ScreenVerdict::Borderline:
    return "borderline";
  }
  return "?";
}

ScreenPlan buildScreenPlan(const std::vector<const Layer *> &Layers) {
  ScreenPlan Plan;
  Plan.Steps.reserve(Layers.size());
  for (const Layer *L : Layers) {
    ScreenLayerPlan Step;
    switch (L->kind()) {
    case Layer::Kind::Linear: {
      const Linear *Lin = static_cast<const Linear *>(L);
      const Tensor &W = Lin->weight(); // [Out, In]
      const Tensor &Bias = Lin->bias();
      Step.Kind = ScreenLayerPlan::Op::Affine;
      Step.OutF = W.dim(0);
      Step.InF = W.dim(1);
      Step.Depth = Lin->accumulationDepth();
      Step.GammaF = fp::accumulationBoundF(Step.Depth);
      Step.Wf.resize(static_cast<size_t>(Step.OutF * Step.InF));
      Step.AbsWUp.resize(Step.Wf.size());
      const double *Wd = W.data();
      for (size_t I = 0; I < Step.Wf.size(); ++I) {
        Step.Wf[I] = static_cast<float>(Wd[I]);
        Step.AbsWUp[I] = fp::floatUp(std::fabs(Wd[I]));
      }
      Step.BiasF.resize(static_cast<size_t>(Step.OutF));
      for (int64_t J = 0; J < Step.OutF; ++J)
        Step.BiasF[static_cast<size_t>(J)] = static_cast<float>(Bias[J]);
      break;
    }
    case Layer::Kind::ReLU:
      Step.Kind = ScreenLayerPlan::Op::Relu;
      break;
    case Layer::Kind::Flatten:
    case Layer::Kind::Reshape:
      // Pure data movement on the flat activation vector.
      Step.Kind = ScreenLayerPlan::Op::Identity;
      break;
    default:
      // Convolutions: no float compilation — the caller classifies every
      // piece Borderline and the two-tier path collapses to the sound one.
      return Plan;
    }
    Plan.Steps.push_back(std::move(Step));
  }
  Plan.Supported = true;
  return Plan;
}

namespace {

/// One affine step on the float box [Lo, Hi]: round-to-nearest dot
/// products for center, radius and magnitude planes, then a cushion of
/// GammaF times the output magnitude (covers the relative error of all
/// three accumulations plus the weight/bias/input float conversions) and
/// an absolute floor of Depth * 2^-149 * (MagInMax + 1) (covers the
/// subnormal-range conversions and operations whose error is absolute,
/// not relative). AbsWUp >= |W| elementwise closes the remaining gap: the
/// radius plane can only over-, never under-weight a generator.
void screenAffine(const ScreenLayerPlan &Step, std::vector<float> &Lo,
                  std::vector<float> &Hi) {
  const size_t In = static_cast<size_t>(Step.InF);
  const size_t Out = static_cast<size_t>(Step.OutF);
  // Flush-to-normal floor for the radius/magnitude planes. Dead ReLU
  // units produce exact-zero interval widths whose one-ULP outward nudge
  // lands in the subnormal range, and every subnormal generator then pays
  // a microcode assist on each product in the dot loops below (measured
  // ~10x on the whole classification). Rounding these planes up to a
  // normal-range floor is sound — they are upper bounds, and 2^-60 is
  // absolute noise next to the GammaF relative cushion — and it keeps
  // the products normal without touching MXCSR (flush-to-zero would
  // break the directed nudges elsewhere).
  constexpr float NormalFloor = 0x1p-60f;
  std::vector<float> C(In), R(In), Mag(In);
  float MagInMax = 0.0f;
  for (size_t K = 0; K < In; ++K) {
    const float Center = 0.5f * (Lo[K] + Hi[K]);
    const float Rad = std::max(
        {fp::subUpF(Hi[K], Center), fp::subUpF(Center, Lo[K]), NormalFloor});
    C[K] = Center;
    R[K] = Rad;
    Mag[K] = fp::addUpF(std::fabs(Center), Rad);
    MagInMax = std::max(MagInMax, Mag[K]);
  }
  const float ConvFloor =
      std::max(fp::upF(static_cast<float>(Step.Depth) * 0x1p-149f *
                       (MagInMax + 1.0f)),
               NormalFloor);
  Lo.assign(Out, 0.0f);
  Hi.assign(Out, 0.0f);
  for (size_t J = 0; J < Out; ++J) {
    const float *Wrow = Step.Wf.data() + J * In;
    const float *Arow = Step.AbsWUp.data() + J * In;
    float Sc = 0.0f, Sr = 0.0f, Sm = 0.0f;
    for (size_t K = 0; K < In; ++K) {
      Sc += C[K] * Wrow[K];
      Sr += R[K] * Arow[K];
      Sm += Mag[K] * Arow[K];
    }
    const float Center = Sc + Step.BiasF[J];
    const float MagOut = fp::addUpF(Sm, std::fabs(Step.BiasF[J]));
    const float Rad = fp::addUpF(
        Sr, fp::addUpF(fp::mulUpF(Step.GammaF, MagOut), ConvFloor));
    Lo[J] = fp::subDownF(Center, Rad);
    Hi[J] = fp::addUpF(Center, Rad);
  }
}

} // namespace

ScreenVerdict screenClassify(const ScreenPlan &Plan, const Tensor &Start,
                             const Tensor &End, const OutputSpec &Spec) {
  if (!Plan.Supported)
    return ScreenVerdict::Borderline;
  const int64_t N = Start.numel();
  std::vector<float> Lo(static_cast<size_t>(N)), Hi(static_cast<size_t>(N));
  for (int64_t J = 0; J < N; ++J) {
    // Outward float enclosure of the segment's bounding box, padded like
    // the double tier's input representation so any round-to-nearest
    // evaluated point s + t*(e-s) is covered too.
    const double SLo = std::min(Start[J], End[J]);
    const double SHi = std::max(Start[J], End[J]);
    const double Pad = fp::mulUp(
        8.0 * DBL_EPSILON,
        fp::addUp(std::fabs(Start[J]), std::fabs(End[J])));
    Lo[static_cast<size_t>(J)] = fp::floatDown(fp::subDown(SLo, Pad));
    Hi[static_cast<size_t>(J)] = fp::floatUp(fp::addUp(SHi, Pad));
  }

  for (const ScreenLayerPlan &Step : Plan.Steps) {
    switch (Step.Kind) {
    case ScreenLayerPlan::Op::Affine:
      if (static_cast<int64_t>(Lo.size()) != Step.InF)
        return ScreenVerdict::Borderline;
      screenAffine(Step, Lo, Hi);
      break;
    case ScreenLayerPlan::Op::Relu:
      for (size_t K = 0; K < Lo.size(); ++K) {
        Lo[K] = std::max(Lo[K], 0.0f);
        Hi[K] = std::max(Hi[K], 0.0f);
      }
      break;
    case ScreenLayerPlan::Op::Identity:
      break;
    }
  }
  for (size_t K = 0; K < Lo.size(); ++K)
    if (!std::isfinite(Lo[K]) || !std::isfinite(Hi[K]))
      return ScreenVerdict::Borderline;

  if (Spec.dim() != static_cast<int64_t>(Lo.size()))
    return ScreenVerdict::Borderline;

  // Directed-double functional enclosure per halfspace: [FLo, FHi]
  // contains g . y + c for every y in the screen box. NaN comparisons are
  // all false, which lands on Borderline — never a false certificate.
  bool AllInside = true;
  for (const auto &H : Spec.halfspaces()) {
    double FLo = H.Offset, FHi = H.Offset;
    for (size_t K = 0; K < Lo.size(); ++K) {
      const double G = H.Normal[static_cast<int64_t>(K)];
      const double L = static_cast<double>(Lo[K]);
      const double U = static_cast<double>(Hi[K]);
      FLo = fp::addDown(FLo,
                        std::min(fp::mulDown(G, L), fp::mulDown(G, U)));
      FHi = fp::addUp(FHi, std::max(fp::mulUp(G, L), fp::mulUp(G, U)));
    }
    if (FHi <= 0.0)
      return ScreenVerdict::Outside;
    if (!(FLo > 0.0))
      AllInside = false;
  }
  return AllInside ? ScreenVerdict::Inside : ScreenVerdict::Borderline;
}

} // namespace genprove
