//===- sampling/sampler.cpp -----------------------------------*- C++ -*-===//

#include "src/sampling/sampler.h"

#include "src/util/stats.h"
#include "src/util/timer.h"

#include <algorithm>

namespace genprove {

namespace {

SamplingResult sampleCurveBounds(const std::vector<const Layer *> &Layers,
                                 const Shape &InputShape, const Region &Curve,
                                 const OutputSpec &Spec, ParamDistribution Dist,
                                 int64_t NumSamples, double Alpha,
                                 Rng &Generator) {
  Timer Clock;
  const int64_t N = Curve.dim();
  const int64_t Chunk = 256;
  int64_t Satisfied = 0;
  int64_t Done = 0;
  while (Done < NumSamples) {
    const int64_t B = std::min(Chunk, NumSamples - Done);
    Tensor Points({B, N});
    for (int64_t I = 0; I < B; ++I) {
      const double T = sampleParam(Dist, Generator);
      const Tensor P = evalCurve(Curve, T);
      std::copy(P.data(), P.data() + N, Points.data() + I * N);
    }
    const Tensor Out = forwardConcretePoints(Layers, InputShape, Points);
    const int64_t OutDim = Out.dim(1);
    for (int64_t I = 0; I < B; ++I) {
      Tensor Row({1, OutDim});
      std::copy(Out.data() + I * OutDim, Out.data() + (I + 1) * OutDim,
                Row.data());
      if (Spec.satisfied(Row))
        ++Satisfied;
    }
    Done += B;
  }

  SamplingResult Result;
  Result.Satisfied = Satisfied;
  Result.NumSamples = NumSamples;
  const auto [Lo, Hi] = clopperPearson(static_cast<size_t>(Satisfied),
                                       static_cast<size_t>(NumSamples), Alpha);
  Result.Lower = Lo;
  Result.Upper = Hi;
  Result.Seconds = Clock.seconds();
  return Result;
}

} // namespace

SamplingResult sampleSegmentBounds(const std::vector<const Layer *> &Layers,
                                   const Shape &InputShape,
                                   const Tensor &Start, const Tensor &End,
                                   const OutputSpec &Spec,
                                   ParamDistribution Dist, int64_t NumSamples,
                                   double Alpha, Rng &Generator) {
  const Region Curve = makeSegmentRegion(
      Start.reshaped({1, Start.numel()}), End.reshaped({1, End.numel()}));
  return sampleCurveBounds(Layers, InputShape, Curve, Spec, Dist, NumSamples,
                           Alpha, Generator);
}

SamplingResult sampleQuadraticBounds(const std::vector<const Layer *> &Layers,
                                     const Shape &InputShape, const Tensor &A0,
                                     const Tensor &A1, const Tensor &A2,
                                     const OutputSpec &Spec,
                                     ParamDistribution Dist,
                                     int64_t NumSamples, double Alpha,
                                     Rng &Generator) {
  const Region Curve = makeQuadraticRegion(A0.reshaped({1, A0.numel()}),
                                           A1.reshaped({1, A1.numel()}),
                                           A2.reshaped({1, A2.numel()}));
  return sampleCurveBounds(Layers, InputShape, Curve, Spec, Dist, NumSamples,
                           Alpha, Generator);
}

} // namespace genprove
