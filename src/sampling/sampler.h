//===- sampling/sampler.h - The sampling baseline ---------------*- C++ -*-===//
///
/// \file
/// The statistical baseline of Table 4: draw parameters from the input
/// distribution, push the concrete points through the pipeline, and report
/// a Clopper-Pearson interval for Pr[y in D] at the requested confidence
/// (the paper uses 99.999%). Unlike GenProve's bounds, these are only
/// correct with the stated probability.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SAMPLING_SAMPLER_H
#define GENPROVE_SAMPLING_SAMPLER_H

#include "src/core/distribution.h"
#include "src/core/genprove.h"

namespace genprove {

/// Result of a sampling run.
struct SamplingResult {
  double Lower = 0.0;
  double Upper = 1.0;
  int64_t Satisfied = 0;
  int64_t NumSamples = 0;
  double Seconds = 0.0;

  double width() const { return Upper - Lower; }
};

/// Sample the segment Start->End under \p Dist and bound Pr[spec] with a
/// Clopper-Pearson interval at confidence (1 - Alpha).
SamplingResult sampleSegmentBounds(const std::vector<const Layer *> &Layers,
                                   const Shape &InputShape,
                                   const Tensor &Start, const Tensor &End,
                                   const OutputSpec &Spec,
                                   ParamDistribution Dist, int64_t NumSamples,
                                   double Alpha, Rng &Generator);

/// Same for a quadratic curve gamma(t) = A0 + A1 t + A2 t^2.
SamplingResult sampleQuadraticBounds(const std::vector<const Layer *> &Layers,
                                     const Shape &InputShape, const Tensor &A0,
                                     const Tensor &A1, const Tensor &A2,
                                     const OutputSpec &Spec,
                                     ParamDistribution Dist,
                                     int64_t NumSamples, double Alpha,
                                     Rng &Generator);

} // namespace genprove

#endif // GENPROVE_SAMPLING_SAMPLER_H
