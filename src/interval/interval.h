//===- interval/interval.h - Scalar interval arithmetic --------*- C++ -*-===//
///
/// \file
/// Closed real intervals with the operations the Box domain needs. Most of
/// the heavy lifting uses the (center, radius) tensor form directly; this
/// scalar type backs the unit tests and the bound computations on output
/// specifications.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_INTERVAL_INTERVAL_H
#define GENPROVE_INTERVAL_INTERVAL_H

#include <algorithm>

namespace genprove {

/// A closed interval [Lo, Hi].
struct Interval {
  double Lo = 0.0;
  double Hi = 0.0;

  Interval() = default;
  Interval(double Lo, double Hi) : Lo(Lo), Hi(Hi) {}

  static Interval point(double V) { return {V, V}; }

  double width() const { return Hi - Lo; }
  double center() const { return 0.5 * (Lo + Hi); }
  double radius() const { return 0.5 * (Hi - Lo); }
  bool contains(double V) const { return Lo <= V && V <= Hi; }
  bool contains(const Interval &Other) const {
    return Lo <= Other.Lo && Other.Hi <= Hi;
  }
  bool intersects(const Interval &Other) const {
    return Lo <= Other.Hi && Other.Lo <= Hi;
  }

  Interval operator+(const Interval &O) const { return {Lo + O.Lo, Hi + O.Hi}; }
  Interval operator-(const Interval &O) const { return {Lo - O.Hi, Hi - O.Lo}; }
  Interval operator*(double S) const {
    return S >= 0 ? Interval{Lo * S, Hi * S} : Interval{Hi * S, Lo * S};
  }
  Interval operator*(const Interval &O) const;

  /// max(0, x) applied to the whole interval.
  Interval relu() const { return {std::max(Lo, 0.0), std::max(Hi, 0.0)}; }

  /// Smallest interval containing both.
  Interval hull(const Interval &O) const {
    return {std::min(Lo, O.Lo), std::max(Hi, O.Hi)};
  }
};

} // namespace genprove

#endif // GENPROVE_INTERVAL_INTERVAL_H
