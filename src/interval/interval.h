//===- interval/interval.h - Scalar interval arithmetic --------*- C++ -*-===//
///
/// \file
/// Closed real intervals with the operations the Box domain needs. Most of
/// the heavy lifting uses the (center, radius) tensor form directly; this
/// scalar type backs the unit tests and the bound computations on output
/// specifications.
///
/// When soundRoundingEnabled() is set, every arithmetic operation rounds
/// the lower endpoint down and the upper endpoint up (see src/util/fp.h),
/// so the result interval always contains the exact real-arithmetic image.
/// With the toggle off the historical round-to-nearest code runs
/// unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_INTERVAL_INTERVAL_H
#define GENPROVE_INTERVAL_INTERVAL_H

#include "src/util/fp.h"

#include <algorithm>

namespace genprove {

/// A closed interval [Lo, Hi].
struct Interval {
  double Lo = 0.0;
  double Hi = 0.0;

  Interval() = default;
  Interval(double Lo, double Hi) : Lo(Lo), Hi(Hi) {}

  static Interval point(double V) { return {V, V}; }

  double width() const { return Hi - Lo; }
  double center() const { return 0.5 * (Lo + Hi); }
  double radius() const { return 0.5 * (Hi - Lo); }
  bool contains(double V) const { return Lo <= V && V <= Hi; }
  bool contains(const Interval &Other) const {
    return Lo <= Other.Lo && Other.Hi <= Hi;
  }
  bool intersects(const Interval &Other) const {
    return Lo <= Other.Hi && Other.Lo <= Hi;
  }

  /// Center/radius pair with [C - R, C + R] guaranteed to contain
  /// [Lo, Hi] regardless of how C rounds: the radius is the directed-up
  /// distance from C to the farther endpoint.
  void toCenterRadius(double &C, double &R) const {
    C = 0.5 * (Lo + Hi);
    if (soundRoundingEnabled())
      R = std::max(fp::subUp(C, Lo), fp::subUp(Hi, C));
    else
      R = 0.5 * (Hi - Lo);
  }

  Interval operator+(const Interval &O) const {
    if (soundRoundingEnabled())
      return {fp::addDown(Lo, O.Lo), fp::addUp(Hi, O.Hi)};
    return {Lo + O.Lo, Hi + O.Hi};
  }
  Interval operator-(const Interval &O) const {
    if (soundRoundingEnabled())
      return {fp::subDown(Lo, O.Hi), fp::subUp(Hi, O.Lo)};
    return {Lo - O.Hi, Hi - O.Lo};
  }
  Interval operator*(double S) const {
    if (soundRoundingEnabled())
      return S >= 0
                 ? Interval{fp::mulDown(Lo, S), fp::mulUp(Hi, S)}
                 : Interval{fp::mulDown(Hi, S), fp::mulUp(Lo, S)};
    return S >= 0 ? Interval{Lo * S, Hi * S} : Interval{Hi * S, Lo * S};
  }
  Interval operator*(const Interval &O) const;

  /// max(0, x) applied to the whole interval (exact in either mode).
  Interval relu() const { return {std::max(Lo, 0.0), std::max(Hi, 0.0)}; }

  /// Smallest interval containing both (exact in either mode).
  Interval hull(const Interval &O) const {
    return {std::min(Lo, O.Lo), std::max(Hi, O.Hi)};
  }
};

} // namespace genprove

#endif // GENPROVE_INTERVAL_INTERVAL_H
