//===- interval/interval.cpp ----------------------------------*- C++ -*-===//

#include "src/interval/interval.h"

namespace genprove {

Interval Interval::operator*(const Interval &O) const {
  const double A = Lo * O.Lo, B = Lo * O.Hi, C = Hi * O.Lo, D = Hi * O.Hi;
  return {std::min(std::min(A, B), std::min(C, D)),
          std::max(std::max(A, B), std::max(C, D))};
}

} // namespace genprove
