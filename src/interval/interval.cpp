//===- interval/interval.cpp ----------------------------------*- C++ -*-===//

#include "src/interval/interval.h"

namespace genprove {

Interval Interval::operator*(const Interval &O) const {
  if (soundRoundingEnabled()) {
    const double LoCands[4] = {fp::mulDown(Lo, O.Lo), fp::mulDown(Lo, O.Hi),
                               fp::mulDown(Hi, O.Lo), fp::mulDown(Hi, O.Hi)};
    const double HiCands[4] = {fp::mulUp(Lo, O.Lo), fp::mulUp(Lo, O.Hi),
                               fp::mulUp(Hi, O.Lo), fp::mulUp(Hi, O.Hi)};
    return {*std::min_element(LoCands, LoCands + 4),
            *std::max_element(HiCands, HiCands + 4)};
  }
  const double A = Lo * O.Lo, B = Lo * O.Hi, C = Hi * O.Lo, D = Hi * O.Hi;
  return {std::min(std::min(A, B), std::min(C, D)),
          std::max(std::max(A, B), std::max(C, D))};
}

} // namespace genprove
