//===- serve/request.h - Serve wire messages -------------------*- C++ -*-===//
///
/// \file
/// The genprove_serve wire protocol: newline-delimited JSON over a Unix
/// or TCP socket, one message per line, framed by the hardened LineFramer
/// (shard/protocol.h) and encoded/parsed with src/obs/json. Requests:
///
///   {"type":"verify","id":"c0-17","net":"tiny","input_shape":"1x4",
///    "start":[...],"end":[...],"specs":["argmax:0:3"],
///    "deadline_ms":500,"budget_mb":64,"p":0.02,"k":100,"threshold":250,
///    "deterministic":false,"sound":true,"arcsine":false,
///    "fuse":false,"fast_screen":false,
///    "inject":"crash","inject_ms":200}
///   {"type":"stats"}   live counters + Prometheus exposition
///   {"type":"ping"}    liveness probe
///
/// Responses (status semantics in docs/SERVING.md):
///
///   {"type":"result","id":...,"status":"ok|degraded|overloaded|error",
///    "rung":"screening|configured|resilient|interval-box",
///    "specs":[{"lower":l,"upper":u,"degraded":b,"verdict":"..."}],
///    "queue_ms":...,"run_ms":...,"retry_after_ms":...,"error":"..."}
///   {"type":"stats","inflight":N,"queued":N,"draining":b,
///    "requests":N,"shed":N,"prometheus":"<text exposition>"}
///   {"type":"pong"}
///   {"type":"error","code":"malformed|oversized|bad_request|draining",
///    "detail":"..."}
///
/// Doubles are %.17g both ways, so the bounds a client reads are
/// bit-exactly the bounds the engine computed.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SERVE_REQUEST_H
#define GENPROVE_SERVE_REQUEST_H

#include "src/core/spec.h"
#include "src/tensor/tensor.h"
#include "src/serve/admission.h"
#include "src/shard/supervisor.h"

#include <string>
#include <vector>

namespace genprove {

/// Parsed verify request. Engine knobs default to the CLI's defaults.
struct ServeRequest {
  enum class Kind : uint8_t { Verify, Stats, Ping };

  Kind Type = Kind::Verify;
  std::string Id;       ///< client correlation id, echoed verbatim
  std::string Net;      ///< registered model name
  std::string InputShape;
  std::vector<double> Start;
  std::vector<double> End;
  std::vector<std::string> Specs;
  double DeadlineMs = 0.0; ///< 0 = no deadline
  int64_t BudgetMb = 0;    ///< requested budget; 0 = server decides
  double RelaxPercent = 0.0;
  double ClusterK = 100.0;
  int64_t NodeThreshold = 250;
  bool Deterministic = false;
  bool Sound = false;
  bool Arcsine = false;
  /// Fused affine->ReLU kernel chains (bit-identical to unfused; wire
  /// field "fuse").
  bool Fuse = false;
  /// Two-tier precision fast path (wire field "fast_screen"): float32
  /// screening decides clear regions, borderline regions re-run under the
  /// sound double tier. Reported bounds always come from the sound tier.
  bool FastScreen = false;
  /// Fault injection for the CI smoke job ("crash"|"hang"|"oomkill"|
  /// "slow"; empty = none). Honored only when the server runs with
  /// --allow-inject.
  std::string Inject;
  double InjectMs = 200.0;
};

/// Decode one request line. False with a machine-readable \p Code
/// ("malformed" | "bad_request") and human \p Detail on failure.
bool decodeServeRequest(const std::string &Line, ServeRequest &Out,
                        std::string *Code, std::string *Detail);

/// Per-spec slice of a verify response.
struct ServeSpecBounds {
  double Lower = 0.0;
  double Upper = 1.0;
  bool Degraded = false;
  std::string Verdict; ///< "HOLDS"/"NEVER HOLDS"/"UNKNOWN" or "p in [l,u]"
};

/// A verify response ready for encoding.
struct ServeResponse {
  std::string Id;
  /// "ok" (certified at full fidelity), "degraded" (sound but widened),
  /// "overloaded" (shed by admission control), "error".
  std::string Status = "ok";
  ShardRung Rung = ShardRung::Configured;
  std::vector<ServeSpecBounds> Specs;
  double QueueMs = 0.0;
  double RunMs = 0.0;
  double RetryAfterMs = 0.0; ///< backoff hint on "overloaded"
  std::string Error;         ///< non-empty on "error"
  ShedReason Shed = ShedReason::None;
};

/// One response line (no trailing newline).
std::string encodeServeResponse(const ServeResponse &R);

/// {"type":"error",...} line for protocol-level failures.
std::string encodeServeError(const std::string &Code,
                             const std::string &Detail);

/// {"type":"pong"} line.
std::string encodeServePong();

/// Live daemon state served on {"type":"stats"}.
struct ServeStatsInfo {
  int64_t InFlight = 0;
  int64_t Queued = 0;
  bool Draining = false;
  int64_t Requests = 0;
  int64_t Shed = 0;
  /// Propagation-cache counters (domains/prop_cache.h); all zero when the
  /// cache is not configured.
  int64_t CacheHits = 0;
  int64_t CacheMisses = 0;
  int64_t CacheEvictions = 0;
  int64_t CacheBytes = 0;
  /// Request-coalescing counters; zero when --coalesce-window-ms is off.
  int64_t CoalesceBatches = 0;
  int64_t CoalesceRequests = 0;
  std::string Prometheus;
};

/// {"type":"stats",...} line with live queue state, propagation-cache and
/// coalescing counters, and the Prometheus exposition of the daemon's
/// metrics registry.
std::string encodeServeStats(const ServeStatsInfo &S);

/// Everything an --isolate worker process needs to run one request's
/// shard attempt: the server writes this to a per-request temp file and
/// re-execs itself with `--worker-request FILE` (plus the launcher's
/// `--shard-worker/--shard-attempt/--shard-rung` flags). The worker
/// reloads the model from the original paths — a crashed propagation
/// must not be able to corrupt the daemon's resident copy.
struct ServeWorkerSpec {
  std::vector<std::string> NetPaths;
  std::string InputShape;
  std::vector<double> Start;
  std::vector<double> End;
  std::vector<std::string> Specs;
  size_t BudgetBytes = 0;      ///< the request's admission slice
  double DeadlineSeconds = 0.0; ///< engine resilience deadline; 0 = none
  double RelaxPercent = 0.0;
  double ClusterK = 100.0;
  int64_t NodeThreshold = 250;
  bool Arcsine = false;
  bool Sound = false; ///< enable directed rounding in the worker process
  bool Fuse = false;  ///< fused affine->ReLU kernel chains
  /// Two-tier screening requested; applied only when the worker's plan
  /// rung is Screening (escalated retries run the full sound path).
  bool FastScreen = false;
  double HeartbeatMs = 100.0;
  /// Worker-side fault fired on attempt 0 only ("crash"|"hang"|"oomkill";
  /// empty = none), so the supervised retry demonstrably recovers.
  std::string Inject;
};

std::string encodeServeWorkerSpec(const ServeWorkerSpec &S);

/// Decode a worker spec file's contents; false with \p Err on damage.
bool decodeServeWorkerSpec(const std::string &Text, ServeWorkerSpec &Out,
                           std::string *Err);

} // namespace genprove

#endif // GENPROVE_SERVE_REQUEST_H
