//===- serve/registry.cpp -------------------------------------*- C++ -*-===//

#include "src/serve/registry.h"

#include "src/nn/serialize.h"

#include <cmath>

namespace genprove {

namespace {

bool fail(std::string *Err, std::string Message) {
  if (Err)
    *Err = std::move(Message);
  return false;
}

/// Name of the first non-finite parameter tensor, or empty when clean.
std::string findNonFiniteParam(Sequential &Net) {
  for (const Param &P : Net.params()) {
    if (!P.Value)
      continue;
    for (int64_t J = 0; J < P.Value->numel(); ++J)
      if (!std::isfinite((*P.Value)[J]))
        return P.Name;
  }
  return {};
}

} // namespace

bool ModelRegistry::registerModel(const std::string &Spec, std::string *Err) {
  const size_t Eq = Spec.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Spec.size())
    return fail(Err, "--net wants NAME=PATH[+PATH2...]: " + Spec);
  RegisteredModel M;
  M.Name = Spec.substr(0, Eq);
  if (Models.count(M.Name))
    return fail(Err, "duplicate model name: " + M.Name);

  size_t Pos = Eq + 1;
  while (Pos <= Spec.size()) {
    const size_t Plus = Spec.find('+', Pos);
    const std::string Path = Plus == std::string::npos
                                 ? Spec.substr(Pos)
                                 : Spec.substr(Pos, Plus - Pos);
    if (Path.empty())
      return fail(Err, "empty path in model spec: " + Spec);
    M.Paths.push_back(Path);
    if (Plus == std::string::npos)
      break;
    Pos = Plus + 1;
  }

  for (const std::string &Path : M.Paths) {
    auto Net = loadNetwork(Path);
    if (!Net)
      return fail(Err, "cannot load network " + Path);
    const std::string Bad = findNonFiniteParam(*Net);
    if (!Bad.empty())
      return fail(Err, "network " + Path + " has a non-finite weight in '" +
                           Bad + "'; refusing to serve it");
    M.Networks.push_back(std::make_unique<Sequential>(std::move(*Net)));
  }
  for (const auto &Net : M.Networks)
    M.Pipeline = concatViews(M.Pipeline, Net->view());

  Models.emplace(M.Name, std::move(M));
  return true;
}

const RegisteredModel *ModelRegistry::find(const std::string &Name) const {
  const auto It = Models.find(Name);
  return It == Models.end() ? nullptr : &It->second;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Models.size());
  for (const auto &[Name, M] : Models)
    Out.push_back(Name);
  return Out;
}

} // namespace genprove
