//===- serve/registry.h - Resident model registry --------------*- C++ -*-===//
///
/// \file
/// The daemon's load-model-once store: serialized networks registered at
/// startup (`--net NAME=PATH[+PATH2...]`) are deserialized a single time,
/// validated for non-finite weights, and served to every request as an
/// immutable pipeline view. Requests reference models by name, so the
/// per-request cost is a map lookup instead of the CLI's cold-start
/// deserialize — the "load the model zoo once" half of ROADMAP item 1.
///
/// The registry is written once before the server starts accepting and
/// only read afterwards, so lookups are lock-free by construction.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SERVE_REGISTRY_H
#define GENPROVE_SERVE_REGISTRY_H

#include "src/nn/sequential.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace genprove {

/// One registered model pipeline (decoder [+ classifier ...]).
struct RegisteredModel {
  std::string Name;
  std::vector<std::string> Paths;
  /// unique_ptr so the Layer* views below stay stable across map growth.
  std::vector<std::unique_ptr<Sequential>> Networks;
  std::vector<const Layer *> Pipeline; ///< concatenated layer view
};

class ModelRegistry {
public:
  /// Parse `NAME=PATH[+PATH2...]` and load every stage. False (with a
  /// message in \p Err) on parse failure, unreadable file, duplicate
  /// name, or a non-finite weight — a poisoned model must be rejected at
  /// startup, not discovered one bound at a time.
  bool registerModel(const std::string &Spec, std::string *Err);

  const RegisteredModel *find(const std::string &Name) const;

  std::vector<std::string> names() const;
  size_t size() const { return Models.size(); }

private:
  std::map<std::string, RegisteredModel> Models;
};

} // namespace genprove

#endif // GENPROVE_SERVE_REGISTRY_H
