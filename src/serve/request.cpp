//===- serve/request.cpp --------------------------------------*- C++ -*-===//

#include "src/serve/request.h"

#include "src/obs/json.h"

#include <cmath>

namespace genprove {

namespace {

bool requestError(std::string *Code, std::string *Detail, const char *C,
                  std::string D) {
  if (Code)
    *Code = C;
  if (Detail)
    *Detail = std::move(D);
  return false;
}

bool readVector(const JsonValue &V, const char *Key,
                std::vector<double> &Out, std::string *Code,
                std::string *Detail) {
  const JsonValue *Arr = V.find(Key);
  if (!Arr || Arr->K != JsonValue::Kind::Array)
    return requestError(Code, Detail, "bad_request",
                        std::string(Key) + " must be an array of numbers");
  Out.clear();
  Out.reserve(Arr->Items.size());
  for (const JsonValue &E : Arr->Items) {
    if (E.K != JsonValue::Kind::Number || !std::isfinite(E.Num))
      return requestError(Code, Detail, "bad_request",
                          std::string(Key) +
                              " has a non-finite or non-numeric entry");
    Out.push_back(E.Num);
  }
  if (Out.empty())
    return requestError(Code, Detail, "bad_request",
                        std::string(Key) + " is empty");
  return true;
}

} // namespace

bool decodeServeRequest(const std::string &Line, ServeRequest &Out,
                        std::string *Code, std::string *Detail) {
  Out = ServeRequest{};
  JsonValue V;
  std::string ParseErr;
  if (!parseJson(Line, V, &ParseErr))
    return requestError(Code, Detail, "malformed", ParseErr);
  if (V.K != JsonValue::Kind::Object)
    return requestError(Code, Detail, "malformed", "request is not an object");

  const JsonValue *Type = V.find("type");
  const std::string &Kind = Type ? Type->stringOr("") : "";
  if (Kind == "stats") {
    Out.Type = ServeRequest::Kind::Stats;
    return true;
  }
  if (Kind == "ping") {
    Out.Type = ServeRequest::Kind::Ping;
    return true;
  }
  if (Kind != "verify")
    return requestError(Code, Detail, "bad_request",
                        "unknown request type (verify | stats | ping)");

  Out.Type = ServeRequest::Kind::Verify;
  if (const JsonValue *Id = V.find("id"))
    Out.Id = Id->stringOr("");
  const JsonValue *Net = V.find("net");
  if (!Net || Net->K != JsonValue::Kind::String || Net->Str.empty())
    return requestError(Code, Detail, "bad_request",
                        "verify request needs a net name");
  Out.Net = Net->Str;
  const JsonValue *Shape = V.find("input_shape");
  if (!Shape || Shape->K != JsonValue::Kind::String || Shape->Str.empty())
    return requestError(Code, Detail, "bad_request",
                        "verify request needs input_shape (e.g. \"1x4\")");
  Out.InputShape = Shape->Str;

  if (!readVector(V, "start", Out.Start, Code, Detail) ||
      !readVector(V, "end", Out.End, Code, Detail))
    return false;
  if (Out.Start.size() != Out.End.size())
    return requestError(Code, Detail, "bad_request",
                        "start and end have different lengths");

  const JsonValue *Specs = V.find("specs");
  if (!Specs || Specs->K != JsonValue::Kind::Array || Specs->Items.empty())
    return requestError(Code, Detail, "bad_request",
                        "verify request needs a non-empty specs array");
  for (const JsonValue &S : Specs->Items) {
    if (S.K != JsonValue::Kind::String)
      return requestError(Code, Detail, "bad_request",
                          "specs entries must be strings");
    // The spec grammar itself is validated here, up front, so a bad spec
    // is a typed refusal instead of a failed propagation later.
    OutputSpec Parsed;
    std::string SpecErr;
    if (!parseOutputSpecText(S.Str, Parsed, &SpecErr))
      return requestError(Code, Detail, "bad_request",
                          "spec '" + S.Str + "': " + SpecErr);
    Out.Specs.push_back(S.Str);
  }

  auto Num = [&](const char *Key, double Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->numberOr(Fallback) : Fallback;
  };
  auto Int = [&](const char *Key, int64_t Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->intOr(Fallback) : Fallback;
  };
  auto Flag = [&](const char *Key, bool Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->boolOr(Fallback) : Fallback;
  };
  Out.DeadlineMs = Num("deadline_ms", 0.0);
  if (!std::isfinite(Out.DeadlineMs))
    Out.DeadlineMs = 0.0;
  Out.BudgetMb = Int("budget_mb", 0);
  if (Out.BudgetMb < 0)
    Out.BudgetMb = 0;
  Out.RelaxPercent = Num("p", 0.0);
  Out.ClusterK = Num("k", 100.0);
  Out.NodeThreshold = Int("threshold", 250);
  Out.Deterministic = Flag("deterministic", false);
  Out.Sound = Flag("sound", false);
  Out.Arcsine = Flag("arcsine", false);
  Out.Fuse = Flag("fuse", false);
  Out.FastScreen = Flag("fast_screen", false);
  if (const JsonValue *Inject = V.find("inject"))
    Out.Inject = Inject->stringOr("");
  if (!Out.Inject.empty() && Out.Inject != "crash" && Out.Inject != "hang" &&
      Out.Inject != "oomkill" && Out.Inject != "slow")
    return requestError(Code, Detail, "bad_request",
                        "inject must be crash|hang|oomkill|slow");
  Out.InjectMs = Num("inject_ms", 200.0);
  return true;
}

std::string encodeServeResponse(const ServeResponse &R) {
  JsonWriter W;
  W.beginObject();
  W.key("type").value("result");
  W.key("id").value(R.Id);
  W.key("status").value(R.Status);
  W.key("rung").value(shardRungName(R.Rung));
  W.key("specs").beginArray();
  for (const ServeSpecBounds &B : R.Specs) {
    W.beginObject()
        .key("lower")
        .value(B.Lower)
        .key("upper")
        .value(B.Upper)
        .key("degraded")
        .value(B.Degraded)
        .key("verdict")
        .value(B.Verdict)
        .endObject();
  }
  W.endArray();
  W.key("queue_ms").value(R.QueueMs);
  W.key("run_ms").value(R.RunMs);
  if (R.Status == "overloaded") {
    W.key("retry_after_ms").value(R.RetryAfterMs);
    W.key("shed_reason").value(shedReasonName(R.Shed));
  }
  if (!R.Error.empty())
    W.key("error").value(R.Error);
  W.endObject();
  return W.str();
}

std::string encodeServeError(const std::string &Code,
                             const std::string &Detail) {
  JsonWriter W;
  W.beginObject();
  W.key("type").value("error");
  W.key("code").value(Code);
  W.key("detail").value(Detail);
  W.endObject();
  return W.str();
}

std::string encodeServePong() {
  JsonWriter W;
  W.beginObject().key("type").value("pong").endObject();
  return W.str();
}

std::string encodeServeStats(const ServeStatsInfo &S) {
  JsonWriter W;
  W.beginObject();
  W.key("type").value("stats");
  W.key("inflight").value(S.InFlight);
  W.key("queued").value(S.Queued);
  W.key("draining").value(S.Draining);
  W.key("requests").value(S.Requests);
  W.key("shed").value(S.Shed);
  W.key("cache_hits").value(S.CacheHits);
  W.key("cache_misses").value(S.CacheMisses);
  W.key("cache_evictions").value(S.CacheEvictions);
  W.key("cache_bytes").value(S.CacheBytes);
  W.key("coalesce_batches").value(S.CoalesceBatches);
  W.key("coalesce_requests").value(S.CoalesceRequests);
  W.key("prometheus").value(S.Prometheus);
  W.endObject();
  return W.str();
}

std::string encodeServeWorkerSpec(const ServeWorkerSpec &S) {
  JsonWriter W;
  W.beginObject();
  W.key("nets").beginArray();
  for (const std::string &P : S.NetPaths)
    W.value(P);
  W.endArray();
  W.key("input_shape").value(S.InputShape);
  W.key("start").beginArray();
  for (double V : S.Start)
    W.value(V);
  W.endArray();
  W.key("end").beginArray();
  for (double V : S.End)
    W.value(V);
  W.endArray();
  W.key("specs").beginArray();
  for (const std::string &T : S.Specs)
    W.value(T);
  W.endArray();
  W.key("budget_bytes").value(static_cast<int64_t>(S.BudgetBytes));
  W.key("deadline_s").value(S.DeadlineSeconds);
  W.key("p").value(S.RelaxPercent);
  W.key("k").value(S.ClusterK);
  W.key("threshold").value(S.NodeThreshold);
  W.key("arcsine").value(S.Arcsine);
  W.key("sound").value(S.Sound);
  W.key("fuse").value(S.Fuse);
  W.key("fast_screen").value(S.FastScreen);
  W.key("heartbeat_ms").value(S.HeartbeatMs);
  W.key("inject").value(S.Inject);
  W.endObject();
  return W.str();
}

bool decodeServeWorkerSpec(const std::string &Text, ServeWorkerSpec &Out,
                           std::string *Err) {
  Out = ServeWorkerSpec{};
  JsonValue V;
  std::string ParseErr;
  if (!parseJson(Text, V, &ParseErr)) {
    if (Err)
      *Err = ParseErr;
    return false;
  }
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = What;
    return false;
  };
  if (V.K != JsonValue::Kind::Object)
    return Fail("worker spec is not an object");

  const JsonValue *Nets = V.find("nets");
  if (!Nets || Nets->K != JsonValue::Kind::Array || Nets->Items.empty())
    return Fail("worker spec needs a non-empty nets array");
  for (const JsonValue &N : Nets->Items) {
    if (N.K != JsonValue::Kind::String || N.Str.empty())
      return Fail("worker spec net paths must be strings");
    Out.NetPaths.push_back(N.Str);
  }
  const JsonValue *Shape = V.find("input_shape");
  if (!Shape || Shape->K != JsonValue::Kind::String)
    return Fail("worker spec needs input_shape");
  Out.InputShape = Shape->Str;

  auto ReadNums = [&](const char *Key, std::vector<double> &Dst) {
    const JsonValue *Arr = V.find(Key);
    if (!Arr || Arr->K != JsonValue::Kind::Array || Arr->Items.empty())
      return false;
    for (const JsonValue &E : Arr->Items) {
      if (E.K != JsonValue::Kind::Number || !std::isfinite(E.Num))
        return false;
      Dst.push_back(E.Num);
    }
    return true;
  };
  if (!ReadNums("start", Out.Start) || !ReadNums("end", Out.End) ||
      Out.Start.size() != Out.End.size())
    return Fail("worker spec needs matching start/end arrays");

  const JsonValue *Specs = V.find("specs");
  if (!Specs || Specs->K != JsonValue::Kind::Array || Specs->Items.empty())
    return Fail("worker spec needs a specs array");
  for (const JsonValue &S : Specs->Items) {
    OutputSpec Parsed;
    if (S.K != JsonValue::Kind::String ||
        !parseOutputSpecText(S.Str, Parsed, nullptr))
      return Fail("worker spec has an invalid spec entry");
    Out.Specs.push_back(S.Str);
  }

  const int64_t Budget = V.find("budget_bytes")
                             ? V.find("budget_bytes")->intOr(0)
                             : 0;
  Out.BudgetBytes = Budget > 0 ? static_cast<size_t>(Budget) : 0;
  auto Num = [&](const char *Key, double Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->numberOr(Fallback) : Fallback;
  };
  Out.DeadlineSeconds = Num("deadline_s", 0.0);
  Out.RelaxPercent = Num("p", 0.0);
  Out.ClusterK = Num("k", 100.0);
  Out.NodeThreshold =
      V.find("threshold") ? V.find("threshold")->intOr(250) : 250;
  Out.Arcsine = V.find("arcsine") ? V.find("arcsine")->boolOr(false) : false;
  Out.Sound = V.find("sound") ? V.find("sound")->boolOr(false) : false;
  Out.Fuse = V.find("fuse") ? V.find("fuse")->boolOr(false) : false;
  Out.FastScreen =
      V.find("fast_screen") ? V.find("fast_screen")->boolOr(false) : false;
  Out.HeartbeatMs = Num("heartbeat_ms", 100.0);
  if (const JsonValue *Inject = V.find("inject"))
    Out.Inject = Inject->stringOr("");
  return true;
}

} // namespace genprove
