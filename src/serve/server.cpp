//===- serve/server.cpp ---------------------------------------*- C++ -*-===//

#include "src/serve/server.h"

#include "src/core/genprove.h"
#include "src/domains/prop_cache.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/parallel/thread_pool.h"
#include "src/shard/process_launcher.h"
#include "src/shard/protocol.h"
#include "src/util/io.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace genprove {

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Safe "1x4"-style shape parse; the CLI's version exits on garbage, a
/// daemon must refuse with a typed error instead.
bool parseShapeText(const std::string &Text, Shape &Out) {
  std::vector<int64_t> Dims;
  std::istringstream In(Text);
  std::string Part;
  while (std::getline(In, Part, 'x')) {
    if (Part.empty() ||
        Part.find_first_not_of("0123456789") != std::string::npos)
      return false;
    errno = 0;
    const long long V = std::strtoll(Part.c_str(), nullptr, 10);
    if (errno == ERANGE || V <= 0)
      return false;
    Dims.push_back(V);
  }
  if (Dims.empty())
    return false;
  Out = Shape(Dims);
  return true;
}

std::string verdictFor(const ProbBounds &B, bool Deterministic) {
  if (Deterministic) {
    const char *V = B.Lower >= 1.0   ? "HOLDS"
                    : B.Upper <= 0.0 ? "NEVER HOLDS"
                                     : "UNKNOWN";
    return B.Degraded ? std::string(V) + " (DEGRADED)" : std::string(V);
  }
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "holds with probability in [%.6f, %.6f]",
                B.Lower, B.Upper);
  return B.Degraded ? "DEGRADED; " + std::string(Buf) : std::string(Buf);
}

void countResponse(const std::string &Status) {
  MetricsRegistry::global()
      .counter(labeledMetricName("serve.responses", "status", Status))
      .add(1);
}

/// Per-request worker spec file for --isolate (unlinked after the run).
class WorkerSpecFile {
public:
  explicit WorkerSpecFile(const std::string &Contents) {
    static std::atomic<uint64_t> Seq{0};
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "/tmp/genprove-serve-%ld-%llu.json",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      Seq.fetch_add(1, std::memory_order_relaxed)));
    FilePath = Buf;
    std::ofstream Out(FilePath, std::ios::trunc);
    Ok = static_cast<bool>(Out << Contents);
  }
  ~WorkerSpecFile() {
    if (!FilePath.empty())
      ::unlink(FilePath.c_str());
  }
  const std::string &path() const { return FilePath; }
  bool ok() const { return Ok; }

private:
  std::string FilePath;
  bool Ok = false;
};

} // namespace

std::string coalesceKeyFor(const ServeRequest &Req) {
  // Every knob the engine sees must be in the key, or two incompatible
  // requests could share one joint state:
  //   * net / input shape / p / k / threshold / arcsine — the propagation
  //     configuration itself;
  //   * budget_mb — the leader acquires ONE admission ticket whose slice
  //     sizes the joint run's device budget;
  //   * sound — the requested rounding mode (process-scoped today, but a
  //     request that asked for sound bounds must never share a state with
  //     one that did not);
  //   * fuse / fast_screen — kernel-fusion and two-tier screening change
  //     the propagation path (fused runs are bit-identical but use a
  //     distinct cache salt; screened requests never coalesce at all, see
  //     the gate in runVerify);
  //   * the pool's thread count — bit-identity makes it result-neutral,
  //     but keying on it keeps batches from straddling an operator's
  //     mid-run setThreads() resize.
  // Deterministic is deliberately absent: the collapse is applied
  // per-member AFTER bounds are computed from the member's own final
  // state (runCoalescedBatch), so it cannot couple members. Specs are
  // per-member for the same reason. Resilience/QoS rung never varies
  // here: coalescing requires DeadlineMs <= 0, and the batched engine
  // runs without resilience by construction.
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf), "|%s|%.17g|%.17g|%lld|%d|%lld|%d|%d|%d|%lld",
                Req.InputShape.c_str(), Req.RelaxPercent, Req.ClusterK,
                static_cast<long long>(Req.NodeThreshold),
                Req.Arcsine ? 1 : 0, static_cast<long long>(Req.BudgetMb),
                Req.Sound ? 1 : 0, Req.Fuse ? 1 : 0, Req.FastScreen ? 1 : 0,
                static_cast<long long>(ThreadPool::global().threads()));
  return Req.Net + Buf;
}

Server::Server(ServeConfig Config, const ModelRegistry &Models)
    : Cfg(std::move(Config)), Registry(Models), Admission(Cfg.Admission) {}

Server::~Server() {
  if (ListenFd >= 0)
    ::close(ListenFd);
  reapConnections(/*All=*/true);
}

void Server::reapConnections(bool All) {
  std::lock_guard<std::mutex> Lock(ConnectionsMu);
  auto It = Connections.begin();
  while (It != Connections.end()) {
    if (All || It->Done->load(std::memory_order_acquire)) {
      if (It->Worker.joinable())
        It->Worker.join();
      It = Connections.erase(It);
    } else {
      ++It;
    }
  }
}

bool Server::writeLine(int Fd, const std::string &Line) {
  static Counter &WriteTimeouts =
      MetricsRegistry::global().counter("serve.write_timeouts");
  std::string Framed = Line;
  Framed.push_back('\n');
  if (writeFullDeadline(Fd, Framed.data(), Framed.size(),
                        Cfg.WriteTimeoutSeconds))
    return true;
  WriteTimeouts.add(1);
  if (logEnabled())
    EventLog::global().emit(LogLevel::Warn, "serve.write_timeout",
                            {{"bytes", static_cast<int64_t>(Framed.size())}});
  return false;
}

ServeResponse Server::runVerify(const ServeRequest &Req) {
  static Counter &Requests = MetricsRegistry::global().counter("serve.requests");
  static Histogram &RequestSeconds =
      MetricsRegistry::global().histogram("serve.request_seconds");
  static Histogram &RunSeconds =
      MetricsRegistry::global().histogram("serve.run_seconds");

  Requests.add(1);
  const double T0 = nowSeconds();
  ServeResponse R;
  R.Id = Req.Id;

  auto Reject = [&](std::string Why) {
    R.Status = "error";
    R.Error = std::move(Why);
    countResponse(R.Status);
    return R;
  };

  const RegisteredModel *Model = Registry.find(Req.Net);
  if (!Model)
    return Reject("unknown net '" + Req.Net + "'");
  Shape InShape;
  if (!parseShapeText(Req.InputShape, InShape))
    return Reject("bad input_shape '" + Req.InputShape + "'");
  const int64_t Latent = static_cast<int64_t>(Req.Start.size());
  if (InShape.numel() != Latent)
    return Reject("start/end length does not match input_shape");
  if (Req.Sound && !Cfg.SoundMode)
    return Reject("sound bounds need a server started with --sound "
                  "(directed rounding is process-wide)");
  if (!Req.Inject.empty() && !Cfg.AllowInject)
    return Reject("fault injection is disabled (server runs without "
                  "--allow-inject)");

  //===------------------------------------------------------------------===//
  // Coalescing: compatible requests arriving within the window share one
  // batched propagation. A request the batch cannot answer (lone arrival,
  // shed joint ticket, per-query abort) falls through to the supervised
  // path below with nothing lost but the window wait.
  //===------------------------------------------------------------------===//
  // Fast-screen requests never coalesce: the screen is a per-segment
  // classification whose borderline set depends on the request's own
  // spec, so there is no shared joint state to amortize.
  if (Cfg.CoalesceWindowSeconds > 0.0 && Cfg.CoalesceMaxBatch > 1 &&
      !Cfg.Isolate && Req.Inject.empty() && Req.DeadlineMs <= 0.0 &&
      !Req.FastScreen && !stopping()) {
    if (tryCoalesce(Req, Model, InShape, R)) {
      countResponse(R.Status);
      if (R.Status == "ok" || R.Status == "degraded") {
        MetricsRegistry::global()
            .counter(labeledMetricName("serve.rung", "rung",
                                       shardRungName(R.Rung)))
            .add(1);
        RunSeconds.record(R.RunMs / 1000.0);
      }
      RequestSeconds.record(nowSeconds() - T0);
      return R;
    }
    R = ServeResponse();
    R.Id = Req.Id;
  }

  //===------------------------------------------------------------------===//
  // Admission: a budget slice and a concurrency slot, or an explicit shed.
  //===------------------------------------------------------------------===//
  const double DeadlineSeconds =
      Req.DeadlineMs > 0.0 ? Req.DeadlineMs / 1000.0 : 0.0;
  AdmissionTicket Ticket = Admission.acquire(
      static_cast<size_t>(Req.BudgetMb) << 20, DeadlineSeconds);
  R.QueueMs = Ticket.queueSeconds() * 1000.0;
  if (!Ticket.admitted()) {
    R.Status = "overloaded";
    R.Shed = Ticket.shedReason();
    R.RetryAfterMs = 100.0 * static_cast<double>(1 + Admission.queued());
    countResponse(R.Status);
    if (logEnabled())
      EventLog::global().emit(LogLevel::Warn, "serve.shed",
                              {{"id", Req.Id},
                               {"reason", shedReasonName(R.Shed)},
                               {"queue_ms", R.QueueMs}});
    return R;
  }

  //===------------------------------------------------------------------===//
  // QoS: remaining deadline → supervision rung.
  //===------------------------------------------------------------------===//
  const bool HasDeadline = DeadlineSeconds > 0.0;
  const double Remaining =
      HasDeadline ? DeadlineSeconds - Ticket.queueSeconds() : 0.0;
  const QosDecision Qos =
      qosDecisionFor(Remaining, HasDeadline, Cfg.Qos, Req.FastScreen);
  R.Rung = Qos.Rung;

  // Injected "slow": hold the admission slot before propagating, creating
  // the queue pressure the loadgen fault mix wants to observe.
  if (Req.Inject == "slow")
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::clamp(Req.InjectMs, 0.0, 10000.0)));

  ShardWorkContext Ctx;
  Ctx.Pipeline = Model->Pipeline;
  Ctx.InputShape = InShape;
  Ctx.Start = Tensor({1, Latent}, Req.Start);
  Ctx.End = Tensor({1, Latent}, Req.End);
  for (const std::string &Text : Req.Specs) {
    OutputSpec Spec;
    parseOutputSpecText(Text, Spec, nullptr); // validated at decode
    Ctx.Specs.push_back(Spec);
  }
  Ctx.NumShards = 1;
  GenProveConfig &Conf = Ctx.Config;
  Conf.RelaxPercent = Req.RelaxPercent;
  Conf.ClusterK = Req.ClusterK;
  Conf.NodeThreshold = Req.NodeThreshold;
  Conf.Distribution =
      Req.Arcsine ? ParamDistribution::Arcsine : ParamDistribution::Uniform;
  Conf.MemoryBudgetBytes = Ticket.budgetBytes();
  Conf.Resilience = Qos.Resilience;
  Conf.FuseRelu = Req.Fuse;
  Conf.FastScreen = Req.FastScreen;

  const double RunStart = nowSeconds();
  std::vector<ShardResult> Results;
  ShardRunSummary Summary;

  if (Qos.Rung == ShardRung::IntervalBox) {
    // Out of time (or nearly): skip supervision and run the interval-box
    // bound directly — it is budget-exempt, cannot OOM or crash, and is
    // the cheapest sound answer. runShardAttempt applies StartAtFullBox
    // from the plan rung.
    AttemptPlan Plan;
    Plan.Rung = ShardRung::IntervalBox;
    Results.push_back(runShardAttempt(Ctx, Plan));
  } else {
    ShardPolicy Policy;
    Policy.NumShards = 1;
    Policy.MaxRetries = Cfg.RequestRetries;
    Policy.BackoffInitialSeconds = Cfg.BackoffInitialSeconds;
    Policy.BackoffMaxSeconds = Cfg.BackoffMaxSeconds;
    Policy.HeartbeatTimeoutSeconds = Cfg.HeartbeatTimeoutSeconds;
    Policy.ShardDeadlineSeconds =
        (HasDeadline ? std::max(Remaining, 0.0)
                     : Cfg.Qos.DefaultRunSeconds) * 1.5 + 0.25;
    Policy.PollIntervalSeconds = 0.005;

    const auto Fallback = [&Ctx](int64_t Shard) {
      AttemptPlan Plan;
      Plan.Shard = Shard;
      Plan.Rung = ShardRung::IntervalBox;
      return runShardAttempt(Ctx, Plan);
    };

    if (Cfg.Isolate) {
      ServeWorkerSpec Spec;
      Spec.NetPaths = Model->Paths;
      Spec.InputShape = Req.InputShape;
      Spec.Start = Req.Start;
      Spec.End = Req.End;
      Spec.Specs = Req.Specs;
      Spec.BudgetBytes = Ticket.budgetBytes();
      Spec.DeadlineSeconds = Qos.Resilience.DeadlineSeconds;
      Spec.RelaxPercent = Req.RelaxPercent;
      Spec.ClusterK = Req.ClusterK;
      Spec.NodeThreshold = Req.NodeThreshold;
      Spec.Arcsine = Req.Arcsine;
      Spec.Sound = Cfg.SoundMode;
      Spec.Fuse = Req.Fuse;
      Spec.FastScreen = Req.FastScreen;
      Spec.HeartbeatMs =
          std::clamp(Cfg.HeartbeatTimeoutSeconds * 250.0, 10.0, 250.0);
      if (Req.Inject != "slow")
        Spec.Inject = Req.Inject; // slow is handled server-side above
      WorkerSpecFile File(encodeServeWorkerSpec(Spec));
      if (!File.ok())
        return Reject("cannot stage worker spec file");
      ProcessShardLauncher Launcher(Cfg.ExePath,
                                    {"--worker-request", File.path()});
      ShardSupervisor Supervisor(Policy, Launcher, Fallback);
      Summary = Supervisor.run();
      Results = Summary.Results;
    } else {
      InProcessShardLauncher::FaultHook Hook;
      if (!Req.Inject.empty() && Req.Inject != "slow") {
        const std::string Mode = Req.Inject;
        Hook = [Mode](const AttemptPlan &Plan, AttemptOutcome &Outcome) {
          if (Plan.Attempt > 0)
            return false; // the retry recovers
          Outcome = Mode == "hang"      ? AttemptOutcome::Hang
                    : Mode == "oomkill" ? AttemptOutcome::OomKill
                                        : AttemptOutcome::Crash;
          return true;
        };
      }
      InProcessShardLauncher Launcher(Ctx, Hook);
      ShardSupervisor Supervisor(Policy, Launcher, Fallback);
      Summary = Supervisor.run();
      Results = Summary.Results;
    }
  }

  const double RunDone = nowSeconds();
  MergedCertificate Merged =
      mergeShardResults(Results, static_cast<int64_t>(Ctx.Specs.size()));
  const bool Degraded = Merged.Degraded || Summary.Degraded ||
                        Qos.Rung == ShardRung::IntervalBox;
  // Report the coarsest rung that actually ran: the QoS decision, or the
  // rung retries escalated to.
  int64_t FinalRung = static_cast<int64_t>(Qos.Rung);
  for (const ShardResult &Res : Results)
    FinalRung = std::max(FinalRung, Res.Rung);
  R.Rung = static_cast<ShardRung>(std::clamp<int64_t>(FinalRung, 0, 3));

  for (size_t I = 0; I < Ctx.Specs.size(); ++I) {
    ProbBounds Bounds = Merged.Specs[I];
    Bounds.Degraded = Bounds.Degraded || Degraded;
    if (Req.Deterministic)
      Bounds = Bounds.deterministic();
    ServeSpecBounds B;
    B.Lower = Bounds.Lower;
    B.Upper = Bounds.Upper;
    B.Degraded = Bounds.Degraded;
    B.Verdict = verdictFor(Bounds, Req.Deterministic);
    R.Specs.push_back(std::move(B));
  }
  R.Status = Degraded ? "degraded" : "ok";
  R.RunMs = (RunDone - RunStart) * 1000.0;

  Ticket.release();
  countResponse(R.Status);
  MetricsRegistry::global()
      .counter(labeledMetricName("serve.rung", "rung", shardRungName(R.Rung)))
      .add(1);
  RunSeconds.record(RunDone - RunStart);
  RequestSeconds.record(nowSeconds() - T0);
  if (logEnabled())
    EventLog::global().emit(LogLevel::Info, "serve.request",
                            {{"id", Req.Id},
                             {"net", Req.Net},
                             {"status", R.Status},
                             {"rung", shardRungName(R.Rung)},
                             {"queue_ms", R.QueueMs},
                             {"run_ms", R.RunMs},
                             {"restarts", Summary.Restarts},
                             {"fallbacks", Summary.Fallbacks}});
  return R;
}

bool Server::tryCoalesce(const ServeRequest &Req,
                         const RegisteredModel *Model, const Shape &InShape,
                         ServeResponse &R) {
  auto Job = std::make_shared<CoalesceJob>();
  Job->Req = &Req;
  const std::string Key = coalesceKeyFor(Req);

  std::unique_lock<std::mutex> Lock(CoalesceMu);
  std::shared_ptr<CoalesceBucket> Bucket;
  bool Leader = false;
  auto It = CoalesceOpen.find(Key);
  if (It != CoalesceOpen.end() && !It->second->Closed &&
      static_cast<int64_t>(It->second->Jobs.size()) < Cfg.CoalesceMaxBatch) {
    Bucket = It->second;
  } else {
    Bucket = std::make_shared<CoalesceBucket>();
    CoalesceOpen[Key] = Bucket;
    Leader = true;
  }
  Bucket->Jobs.push_back(Job);

  if (!Leader) {
    // A full batch need not wait out the window; wake the leader early.
    if (static_cast<int64_t>(Bucket->Jobs.size()) >= Cfg.CoalesceMaxBatch)
      Bucket->Cv.notify_all();
    // The leader always closes the bucket within window + run time, so
    // this wait is bounded.
    Bucket->Cv.wait(Lock, [&] { return Job->Done; });
    R = Job->Resp;
    return !Job->Declined;
  }

  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(Cfg.CoalesceWindowSeconds));
  Bucket->Cv.wait_until(Lock, Deadline, [&] {
    return static_cast<int64_t>(Bucket->Jobs.size()) >=
               Cfg.CoalesceMaxBatch ||
           stopping();
  });
  Bucket->Closed = true;
  auto Cur = CoalesceOpen.find(Key);
  if (Cur != CoalesceOpen.end() && Cur->second == Bucket)
    CoalesceOpen.erase(Cur);
  const std::vector<std::shared_ptr<CoalesceJob>> Jobs = Bucket->Jobs;
  Lock.unlock();

  runCoalescedBatch(Jobs, Model, InShape);

  Lock.lock();
  for (const auto &J : Jobs)
    J->Done = true;
  Bucket->Cv.notify_all();
  R = Job->Resp;
  return !Job->Declined;
}

void Server::runCoalescedBatch(
    const std::vector<std::shared_ptr<CoalesceJob>> &Jobs,
    const RegisteredModel *Model, const Shape &InShape) {
  static Counter &Batches =
      MetricsRegistry::global().counter("serve.coalesce.batches");
  static Counter &BatchedRequests =
      MetricsRegistry::global().counter("serve.coalesce.requests");
  static Counter &DedupHits =
      MetricsRegistry::global().counter("serve.coalesce.dedup_hits");
  static Counter &Declines =
      MetricsRegistry::global().counter("serve.coalesce.declined");

  // A batch of one amortizes nothing: hand the request straight to the
  // supervised path rather than pay an unsupervised propagation.
  if (Jobs.size() < 2) {
    for (const auto &J : Jobs)
      J->Declined = true;
    Declines.add(static_cast<int64_t>(Jobs.size()));
    return;
  }

  const ServeRequest &Lead = *Jobs.front()->Req;
  // One admission ticket covers the joint run; companions ride along
  // without consuming concurrency slots.
  AdmissionTicket Ticket =
      Admission.acquire(static_cast<size_t>(Lead.BudgetMb) << 20, 0.0);
  if (!Ticket.admitted()) {
    // Shed joint ticket: let every member queue (and possibly shed) on
    // its own through the normal path, which owns that protocol.
    for (const auto &J : Jobs)
      J->Declined = true;
    Declines.add(static_cast<int64_t>(Jobs.size()));
    return;
  }

  // Dedupe identical (start, end) pairs: repeated segments — the repeat
  // traffic the propagation cache also targets — propagate once and fan
  // their state out to every requester.
  const int64_t Latent = static_cast<int64_t>(Lead.Start.size());
  std::vector<std::pair<Tensor, Tensor>> Segments;
  std::map<std::pair<std::vector<double>, std::vector<double>>, size_t>
      SegIndex;
  std::vector<size_t> JobSeg(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const ServeRequest &Rq = *Jobs[I]->Req;
    auto SegKey = std::make_pair(Rq.Start, Rq.End);
    auto Found = SegIndex.find(SegKey);
    if (Found != SegIndex.end()) {
      JobSeg[I] = Found->second;
      DedupHits.add(1);
      continue;
    }
    JobSeg[I] = Segments.size();
    SegIndex.emplace(std::move(SegKey), Segments.size());
    Segments.emplace_back(Tensor({1, Latent}, Rq.Start),
                          Tensor({1, Latent}, Rq.End));
  }

  GenProveConfig Conf;
  Conf.RelaxPercent = Lead.RelaxPercent;
  Conf.ClusterK = Lead.ClusterK;
  Conf.NodeThreshold = Lead.NodeThreshold;
  Conf.Distribution =
      Lead.Arcsine ? ParamDistribution::Arcsine : ParamDistribution::Uniform;
  Conf.MemoryBudgetBytes = Ticket.budgetBytes();
  Conf.FuseRelu = Lead.Fuse; // keyed, so uniform across the batch
  // No resilience: batching needs the abort-on-OOM engine (a resilient
  // run's degradations could couple queries). An aborted or degraded
  // member is declined back to the supervised path below.

  const double RunStart = nowSeconds();
  const GenProve Prover(Conf);
  const std::vector<PropagatedState> States =
      Prover.propagateSegmentsBatch(Model->Pipeline, InShape, Segments);
  const double RunDone = nowSeconds();
  Batches.add(1);

  for (size_t I = 0; I < Jobs.size(); ++I) {
    CoalesceJob &J = *Jobs[I];
    const ServeRequest &Rq = *J.Req;
    const PropagatedState &St = States[JobSeg[I]];
    if (St.OutOfMemory) {
      J.Declined = true;
      Declines.add(1);
      continue;
    }
    BatchedRequests.add(1);
    ServeResponse &Resp = J.Resp;
    Resp.Id = Rq.Id;
    Resp.Rung = ShardRung::Configured;
    Resp.QueueMs = Ticket.queueSeconds() * 1000.0;
    Resp.RunMs = (RunDone - RunStart) * 1000.0;
    for (const std::string &Text : Rq.Specs) {
      OutputSpec Spec;
      parseOutputSpecText(Text, Spec, nullptr); // validated at decode
      ProbBounds Bounds = Prover.boundsFor(St, Spec);
      Bounds.Degraded = Bounds.Degraded || St.Degraded;
      if (Rq.Deterministic)
        Bounds = Bounds.deterministic();
      ServeSpecBounds B;
      B.Lower = Bounds.Lower;
      B.Upper = Bounds.Upper;
      B.Degraded = Bounds.Degraded;
      B.Verdict = verdictFor(Bounds, Rq.Deterministic);
      Resp.Specs.push_back(std::move(B));
    }
    Resp.Status = St.Degraded ? "degraded" : "ok";
  }
  Ticket.release();

  if (logEnabled())
    EventLog::global().emit(
        LogLevel::Info, "serve.coalesce",
        {{"requests", static_cast<int64_t>(Jobs.size())},
         {"segments", static_cast<int64_t>(Segments.size())},
         {"run_ms", (RunDone - RunStart) * 1000.0}});
}

bool Server::handleLine(int Fd, const std::string &Line) {
  ServeRequest Req;
  std::string Code, Detail;
  if (!decodeServeRequest(Line, Req, &Code, &Detail)) {
    MetricsRegistry::global().counter("serve.bad_requests").add(1);
    return writeLine(Fd, encodeServeError(Code, Detail));
  }
  switch (Req.Type) {
  case ServeRequest::Kind::Ping:
    return writeLine(Fd, encodeServePong());
  case ServeRequest::Kind::Stats: {
    MetricsRegistry &Reg = MetricsRegistry::global();
    const PropagationCache::Snapshot Cache =
        PropagationCache::global().snapshot();
    ServeStatsInfo S;
    S.InFlight = Admission.inFlight();
    S.Queued = Admission.queued();
    S.Draining = Admission.draining();
    S.Requests = Reg.counter("serve.requests").value();
    S.Shed = Reg.counter("serve.shed").value();
    S.CacheHits = Cache.Hits;
    S.CacheMisses = Cache.Misses;
    S.CacheEvictions = Cache.Evictions;
    S.CacheBytes = static_cast<int64_t>(Cache.Bytes);
    S.CoalesceBatches = Reg.counter("serve.coalesce.batches").value();
    S.CoalesceRequests = Reg.counter("serve.coalesce.requests").value();
    S.Prometheus = Reg.toPrometheus();
    return writeLine(Fd, encodeServeStats(S));
  }
  case ServeRequest::Kind::Verify:
    return writeLine(Fd, encodeServeResponse(runVerify(Req)));
  }
  return true;
}

void Server::handleConnection(int Fd,
                              std::shared_ptr<std::atomic<bool>> Done) {
  static Counter &WireErrors =
      MetricsRegistry::global().counter("serve.wire_errors");
  LineFramer Framer(Cfg.MaxLineBytes);
  std::vector<char> Buf(64 * 1024);
  bool Open = true;
  while (Open && !stopping()) {
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    const int N = ::poll(&P, 1, 100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      continue;
    const ssize_t Got = readChunk(Fd, Buf.data(), Buf.size());
    if (Got < 0)
      break;
    if (Got == 0) {
      // EOF. A partial trailing line is a wire error worth counting even
      // though the peer is gone and cannot hear about it.
      if (Framer.finish() != WireError::None)
        WireErrors.add(1);
      break;
    }
    Framer.feed(Buf.data(), static_cast<size_t>(Got));
    std::string Line;
    LineFramer::Frame F;
    while (Open && (F = Framer.next(Line)) != LineFramer::Frame::None) {
      if (F == LineFramer::Frame::Oversized) {
        WireErrors.add(1);
        Open = writeLine(
            Fd, encodeServeError("oversized",
                                 "request line exceeds the frame cap"));
        continue;
      }
      Open = handleLine(Fd, Line);
    }
  }
  ::close(Fd);
  LiveConnections.fetch_sub(1, std::memory_order_relaxed);
  Done->store(true, std::memory_order_release);
}

bool Server::run() {
  ignoreSigPipe();
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "genprove_serve: socket: %s\n", std::strerror(errno));
    return false;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Cfg.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "genprove_serve: socket path too long: %s\n",
                 Cfg.SocketPath.c_str());
    return false;
  }
  std::strncpy(Addr.sun_path, Cfg.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Cfg.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 128) != 0) {
    std::fprintf(stderr, "genprove_serve: bind/listen %s: %s\n",
                 Cfg.SocketPath.c_str(), std::strerror(errno));
    return false;
  }
  if (logEnabled())
    EventLog::global().emit(
        LogLevel::Info, "serve.start",
        {{"socket", Cfg.SocketPath},
         {"models", static_cast<int64_t>(Registry.size())},
         {"isolate", Cfg.Isolate}});

  static Counter &Accepted =
      MetricsRegistry::global().counter("serve.connections");
  while (!stopping()) {
    struct pollfd P;
    P.fd = ListenFd;
    P.events = POLLIN;
    P.revents = 0;
    const int N = ::poll(&P, 1, 100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0 || !(P.revents & POLLIN))
      continue;
    const int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      continue;
    if (LiveConnections.load(std::memory_order_relaxed) >=
        Cfg.MaxConnections) {
      // Connection-level shed: cheaper than a thread, still an answer.
      writeLine(Client, encodeServeError("overloaded",
                                         "too many client connections"));
      ::close(Client);
      MetricsRegistry::global().counter("serve.shed").add(1);
      continue;
    }
    LiveConnections.fetch_add(1, std::memory_order_relaxed);
    Accepted.add(1);
    reapConnections(/*All=*/false);
    ConnEntry Entry;
    Entry.Done = std::make_shared<std::atomic<bool>>(false);
    Entry.Worker =
        std::thread(&Server::handleConnection, this, Client, Entry.Done);
    std::lock_guard<std::mutex> Lock(ConnectionsMu);
    Connections.push_back(std::move(Entry));
  }

  //===------------------------------------------------------------------===//
  // Graceful drain: stop accepting, shed the queue, let in-flight work
  // finish under the drain deadline, then flush every telemetry artifact.
  //===------------------------------------------------------------------===//
  if (logEnabled())
    EventLog::global().emit(LogLevel::Info, "serve.drain_begin",
                            {{"inflight", Admission.inFlight()},
                             {"queued", Admission.queued()}});
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Cfg.SocketPath.c_str());
  Admission.beginDrain();
  const bool Drained = Admission.awaitIdle(Cfg.DrainDeadlineSeconds);
  reapConnections(/*All=*/true);
  if (logEnabled())
    EventLog::global().emit(LogLevel::Info, "serve.drain_end",
                            {{"drained", Drained}});
  ObsFlushGuard::flushNow();
  return true;
}

} // namespace genprove
