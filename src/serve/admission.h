//===- serve/admission.h - Request admission control -----------*- C++ -*-===//
///
/// \file
/// Admission control for the verification daemon: one global memory
/// budget (the daemon-wide DeviceMemoryModel ceiling) partitioned among
/// concurrently-admitted requests, plus a bounded wait queue. Each
/// admitted request receives a budget *slice* — min(requested, fair
/// share, what is currently uncommitted) — that becomes its engine
/// GenProveConfig::MemoryBudgetBytes, so the sum of live engine budgets
/// can never exceed the daemon ceiling and the simulated device cannot be
/// overcommitted no matter how many clients pile on.
///
/// A request that cannot be admitted immediately waits in FIFO order up
/// to the queue bound and its own deadline; when either is exceeded (or
/// the queue is full, or the server is draining) it is *shed* with an
/// explicit OVERLOADED response — the load-shedding contract: every
/// request gets an answer, the unlucky ones get a cheap honest one
/// instead of an OOM or a silent hang.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SERVE_ADMISSION_H
#define GENPROVE_SERVE_ADMISSION_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>

namespace genprove {

class AdmissionController;

/// Why a request was refused.
enum class ShedReason : uint8_t {
  None = 0,
  QueueFull,  ///< the bounded wait queue was already at capacity
  Timeout,    ///< queued longer than the wait bound / request deadline
  Draining,   ///< the server is shutting down and takes no new work
};

const char *shedReasonName(ShedReason R);

/// RAII admission ticket: releases the request's budget slice and
/// concurrency slot on destruction. Movable, not copyable.
class AdmissionTicket {
public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket &&O) noexcept;
  AdmissionTicket &operator=(AdmissionTicket &&O) noexcept;
  AdmissionTicket(const AdmissionTicket &) = delete;
  AdmissionTicket &operator=(const AdmissionTicket &) = delete;
  ~AdmissionTicket();

  bool admitted() const { return Owner != nullptr; }
  ShedReason shedReason() const { return Reason; }
  /// The engine memory budget this request may use; 0 = unlimited (only
  /// when the daemon itself runs without a budget).
  size_t budgetBytes() const { return BudgetBytes; }
  /// Time spent waiting for admission, in seconds.
  double queueSeconds() const { return QueueSeconds; }

  void release();

private:
  friend class AdmissionController;

  AdmissionController *Owner = nullptr;
  size_t BudgetBytes = 0;
  double QueueSeconds = 0.0;
  ShedReason Reason = ShedReason::None;
};

/// The daemon-wide admission gate. Thread-safe; acquire() blocks the
/// calling connection thread (each connection has its own), not the
/// accept loop.
class AdmissionController {
public:
  struct Config {
    /// Daemon-wide simulated-device budget; 0 = unlimited (slices are
    /// then also unlimited and only MaxConcurrent gates admission).
    size_t BudgetBytes = 0;
    /// Concurrently-admitted requests; also the denominator of the fair
    /// budget share.
    int64_t MaxConcurrent = 4;
    /// Requests allowed to wait for a slot beyond the concurrent ones.
    int64_t MaxQueue = 16;
    /// Longest a request may wait before it is shed; <= 0 disables the
    /// bound (requests then wait up to their own deadline, or forever).
    double MaxQueueWaitSeconds = 5.0;
  };

  explicit AdmissionController(Config C);

  /// Try to admit a request. \p RequestedBytes is the client's own budget
  /// ask (0 = no preference → fair share); \p DeadlineSeconds caps the
  /// wait (<= 0 = no request deadline). Blocks until admitted or shed.
  AdmissionTicket acquire(size_t RequestedBytes, double DeadlineSeconds);

  /// Enter drain mode: all queued and future acquires shed immediately
  /// with ShedReason::Draining; running tickets are unaffected.
  void beginDrain();

  /// Block until every admitted ticket has been released, or the timeout
  /// expires; true when fully drained.
  bool awaitIdle(double TimeoutSeconds);

  int64_t inFlight() const;
  int64_t queued() const;
  bool draining() const;

private:
  friend class AdmissionTicket;
  void release(size_t Bytes);

  Config Cfg;
  mutable std::mutex Mu;
  std::condition_variable Cv;
  size_t CommittedBytes = 0; ///< summed slices of admitted requests
  int64_t Running = 0;
  int64_t Waiting = 0;
  uint64_t NextSeq = 0;   ///< FIFO ticket order
  uint64_t ServeSeq = 0;  ///< next sequence eligible for admission
  std::set<uint64_t> Abandoned; ///< shed sequences the head steps over
  bool Draining = false;
};

} // namespace genprove

#endif // GENPROVE_SERVE_ADMISSION_H
