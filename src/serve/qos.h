//===- serve/qos.h - Deadline-to-rung QoS mapping --------------*- C++ -*-===//
///
/// \file
/// Per-request quality-of-service for the verification daemon: each
/// request carries an optional deadline, and the remaining time when the
/// request is finally admitted decides which supervision rung its
/// propagation starts at. The ladder reuses the shard supervisor's rungs
/// (shard/supervisor.h) — the same coarsening order that makes retries
/// converge makes late requests cheap:
///
///   remaining > ResilientFloor   Configured  — the user's full domain,
///                                under a deadline equal to the remaining
///                                time so the PR-3 ladder bounds the tail;
///                                with the request's fast-screen opt-in
///                                this becomes Screening, the rung above
///                                Configured: a float32 screen decides the
///                                clear regions and only borderline ones
///                                pay the sound double tier;
///   BoxFloor < remaining <= RF   Resilient   — degradation ladder armed
///                                from layer 0 (local boxing bites early);
///   remaining <= BoxFloor        IntervalBox — StartAtFullBox: the whole
///                                pipeline runs budget-exempt interval
///                                arithmetic. This includes remaining <= 0:
///                                an already-late request still gets a
///                                *sound* [l, u] — wider, never wrong, and
///                                never a silent timeout.
///
/// Resilience is unconditionally enabled server-side — an admitted
/// request must terminate with a sound bound no matter what the engine
/// hits — so the response status is CERTIFIED when the engine stayed
/// clean and DEGRADED (still sound) when any rung fired.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SERVE_QOS_H
#define GENPROVE_SERVE_QOS_H

#include "src/domains/propagate.h"
#include "src/shard/supervisor.h"

namespace genprove {

/// Tuning knobs for the deadline→rung mapping.
struct QosPolicy {
  /// Below this much remaining time, skip straight past the full domain
  /// to the Resilient rung.
  double ResilientFloorSeconds = 0.25;
  /// Below this much remaining time (including zero and negative), only
  /// the interval-box analysis can finish meaningfully.
  double BoxFloorSeconds = 0.05;
  /// Engine deadline applied to requests that carry none, so a pathological
  /// propagation cannot hold a server slot forever.
  double DefaultRunSeconds = 30.0;
};

/// The rung and engine resilience configuration chosen for one request.
struct QosDecision {
  ShardRung Rung = ShardRung::Configured;
  ResilienceConfig Resilience; ///< Enabled, with the QoS deadline applied
};

/// Map remaining wall-clock time onto the rung ladder. \p HasDeadline is
/// false for requests that carry no deadline (always Configured, bounded
/// by DefaultRunSeconds). Boundary values land on the coarser rung: a
/// request with exactly ResilientFloor remaining runs Resilient, one with
/// exactly BoxFloor remaining runs IntervalBox.
QosDecision qosDecisionFor(double RemainingSeconds, bool HasDeadline,
                           const QosPolicy &Policy);

/// As above, with the request's two-tier fast-screen opt-in: when
/// \p FastScreen and the ladder would start at Configured, start at the
/// Screening rung instead. Screening never overrides a deadline-driven
/// coarsening — a late request has no time for a screen-then-certify
/// round trip — and escalated retries leave the rung through the normal
/// floor machinery (Screening < Configured numerically, so a floor raise
/// abandons the screen first).
QosDecision qosDecisionFor(double RemainingSeconds, bool HasDeadline,
                           const QosPolicy &Policy, bool FastScreen);

} // namespace genprove

#endif // GENPROVE_SERVE_QOS_H
