//===- serve/qos.cpp ------------------------------------------*- C++ -*-===//

#include "src/serve/qos.h"

#include <algorithm>

namespace genprove {

QosDecision qosDecisionFor(double RemainingSeconds, bool HasDeadline,
                           const QosPolicy &Policy) {
  QosDecision D;
  D.Resilience.Enabled = true;
  if (!HasDeadline) {
    D.Rung = ShardRung::Configured;
    D.Resilience.DeadlineSeconds = Policy.DefaultRunSeconds;
    return D;
  }
  if (RemainingSeconds <= Policy.BoxFloorSeconds) {
    // Late or nearly-late: the budget-exempt interval-box analysis is the
    // only rung guaranteed to answer in (almost) zero time, and its
    // answer is still a sound enclosure.
    D.Rung = ShardRung::IntervalBox;
    D.Resilience.StartAtFullBox = true;
    D.Resilience.DeadlineSeconds = std::max(RemainingSeconds, 0.0);
    return D;
  }
  if (RemainingSeconds <= Policy.ResilientFloorSeconds) {
    D.Rung = ShardRung::Resilient;
    D.Resilience.DeadlineSeconds = RemainingSeconds;
    return D;
  }
  D.Rung = ShardRung::Configured;
  D.Resilience.DeadlineSeconds = RemainingSeconds;
  return D;
}

QosDecision qosDecisionFor(double RemainingSeconds, bool HasDeadline,
                           const QosPolicy &Policy, bool FastScreen) {
  QosDecision D = qosDecisionFor(RemainingSeconds, HasDeadline, Policy);
  if (FastScreen && D.Rung == ShardRung::Configured)
    D.Rung = ShardRung::Screening;
  return D;
}

} // namespace genprove
