//===- serve/server.h - The verification daemon ----------------*- C++ -*-===//
///
/// \file
/// genprove_serve's engine room: a Unix-domain-socket server speaking the
/// newline-JSON protocol of serve/request.h. One accept loop (poll with a
/// short tick so stop/drain flags are honored promptly), one thread per
/// connection, requests executed through the shard supervisor so every
/// fault mode the CLI's sharded path survives — crash, hang, OOM-kill,
/// protocol garbage — is contained per request here too:
///
///   admission   AdmissionController partitions the daemon budget and
///               sheds excess load with explicit OVERLOADED responses;
///   QoS         qosDecisionFor maps the request's remaining deadline
///               onto the rung ladder; late requests get sound DEGRADED
///               interval-box answers, never silent timeouts;
///   containment propagation runs under a per-request ShardSupervisor
///               (in-process worker by default, fork/exec with --isolate)
///               with retry/backoff and a sound interval-box fallback;
///               slow clients are bounded by write deadlines;
///   lifecycle   requestStop() (the SIGTERM handler's one call) stops the
///               accept loop, sheds the queue, drains in-flight work
///               under a deadline and flushes all ObsFlushGuard artifacts.
///
/// The full protocol and status semantics live in docs/SERVING.md.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SERVE_SERVER_H
#define GENPROVE_SERVE_SERVER_H

#include "src/serve/admission.h"
#include "src/serve/qos.h"
#include "src/serve/registry.h"
#include "src/serve/request.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace genprove {

/// Compatibility class of a verify request for coalescing: requests may
/// share one batched propagation only when every result-affecting knob is
/// identical (the admission budget too, since the leader acquires one
/// ticket for the whole batch). Specs and determinism are per-member —
/// bounds are evaluated per request on its own final state. Exposed for
/// the differential tests; the definition documents each keyed knob.
std::string coalesceKeyFor(const ServeRequest &Req);

struct ServeConfig {
  std::string SocketPath; ///< Unix-domain socket the daemon listens on
  AdmissionController::Config Admission;
  QosPolicy Qos;
  /// Retries per request after the first attempt before the interval-box
  /// fallback answers (the per-request supervision ladder).
  int64_t RequestRetries = 2;
  /// Backoff between request-level retries; interactive latencies want a
  /// much shorter ladder than the batch CLI.
  double BackoffInitialSeconds = 0.01;
  double BackoffMaxSeconds = 0.1;
  /// Kill a worker silent for this long (catches hung propagations).
  double HeartbeatTimeoutSeconds = 2.0;
  /// Budget for writing one response to a client; a socket still blocked
  /// after this is a slow/dead client and the connection is dropped.
  double WriteTimeoutSeconds = 5.0;
  /// How long SIGTERM waits for in-flight requests before giving up.
  double DrainDeadlineSeconds = 10.0;
  /// Longest request line accepted before the typed "oversized" error.
  size_t MaxLineBytes = 1u << 20;
  /// Concurrent client connections (not requests; admission bounds those).
  int64_t MaxConnections = 64;
  /// Run propagations in fork/exec worker processes (full isolation:
  /// a crashing propagation cannot take the daemon down) instead of
  /// in-process worker threads.
  bool Isolate = false;
  /// Path re-exec'd for --isolate workers (normally /proc/self/exe).
  std::string ExePath = "/proc/self/exe";
  /// Honor the request "inject" field (CI fault smoke); off in production.
  bool AllowInject = false;
  /// Directed rounding was enabled at startup; requests asking for sound
  /// bounds are refused unless this is on (the rounding mode is process
  /// scoped, so it cannot be toggled per request).
  bool SoundMode = false;
  /// Coalesce compatible verify requests that arrive within this window
  /// into one batched propagation (GenProve::propagateSegmentsBatch):
  /// the first request of a compatibility class (net, engine knobs,
  /// budget; no deadline, no inject, not --isolate) becomes the leader,
  /// waits up to this long for companions, holds ONE admission ticket
  /// for the joint run and splits the per-query results — which are
  /// bit-exactly what each request would have computed alone — back to
  /// every member. 0 disables coalescing. The batched run is not
  /// supervised; any member whose propagation aborts (OOM) or degrades
  /// is transparently re-run through the normal supervised path.
  double CoalesceWindowSeconds = 0.0;
  /// Most requests one coalesced batch may carry (leader included).
  int64_t CoalesceMaxBatch = 8;
};

class Server {
public:
  Server(ServeConfig Config, const ModelRegistry &Registry);
  ~Server();

  /// Bind, listen and serve until requestStop(). Returns false when the
  /// socket could not be set up (message on stderr). On a clean return
  /// all connections are closed and in-flight work is drained.
  bool run();

  /// Begin graceful shutdown; async-signal-safe (one atomic store), so
  /// the SIGTERM handler can call it directly.
  void requestStop() { Stop.store(true, std::memory_order_release); }

  bool stopping() const { return Stop.load(std::memory_order_acquire); }

private:
  /// A connection thread plus its completion flag, so the accept loop can
  /// reap finished threads instead of accumulating them for the daemon's
  /// whole lifetime.
  struct ConnEntry {
    std::thread Worker;
    std::shared_ptr<std::atomic<bool>> Done;
  };

  /// One request waiting on (or leading) a coalesced batch. The pointed-to
  /// request lives on the owning connection thread's stack, which blocks
  /// until Done, so the leader may read it safely.
  struct CoalesceJob {
    const ServeRequest *Req = nullptr;
    ServeResponse Resp;
    bool Done = false;
    /// The batch could not answer this member (lone request, shed joint
    /// ticket, per-query OOM/degradation); run the supervised path.
    bool Declined = false;
  };

  /// An open compatibility bucket: jobs accumulate until the leader's
  /// window expires or the batch is full, then the bucket closes and the
  /// leader runs the joint propagation.
  struct CoalesceBucket {
    std::vector<std::shared_ptr<CoalesceJob>> Jobs;
    bool Closed = false;
    std::condition_variable Cv;
  };

  void handleConnection(int Fd, std::shared_ptr<std::atomic<bool>> Done);
  /// One request line → one response line; true while the connection
  /// should stay open.
  bool handleLine(int Fd, const std::string &Line);
  ServeResponse runVerify(const ServeRequest &Req);
  /// Enter the coalescer with a validated request. True when the batch
  /// answered and \p R is final; false when the request must run the
  /// normal supervised path instead.
  bool tryCoalesce(const ServeRequest &Req, const RegisteredModel *Model,
                   const Shape &InShape, ServeResponse &R);
  /// Leader side: one admission ticket, one batched propagation, split
  /// the per-query results into every job's response.
  void runCoalescedBatch(
      const std::vector<std::shared_ptr<CoalesceJob>> &Jobs,
      const RegisteredModel *Model, const Shape &InShape);
  bool writeLine(int Fd, const std::string &Line);
  /// Join threads whose connection has ended (all of them when \p All).
  void reapConnections(bool All);

  ServeConfig Cfg;
  const ModelRegistry &Registry;
  AdmissionController Admission;
  std::atomic<bool> Stop{false};
  std::atomic<int64_t> LiveConnections{0};
  int ListenFd = -1;
  std::vector<ConnEntry> Connections;
  std::mutex ConnectionsMu;
  std::mutex CoalesceMu;
  std::unordered_map<std::string, std::shared_ptr<CoalesceBucket>>
      CoalesceOpen;
};

} // namespace genprove

#endif // GENPROVE_SERVE_SERVER_H
