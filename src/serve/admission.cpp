//===- serve/admission.cpp ------------------------------------*- C++ -*-===//

#include "src/serve/admission.h"

#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace genprove {

const char *shedReasonName(ShedReason R) {
  switch (R) {
  case ShedReason::None:
    return "none";
  case ShedReason::QueueFull:
    return "queue-full";
  case ShedReason::Timeout:
    return "timeout";
  case ShedReason::Draining:
    return "draining";
  }
  return "none";
}

//===----------------------------------------------------------------------===//
// AdmissionTicket
//===----------------------------------------------------------------------===//

AdmissionTicket::AdmissionTicket(AdmissionTicket &&O) noexcept
    : Owner(O.Owner), BudgetBytes(O.BudgetBytes), QueueSeconds(O.QueueSeconds),
      Reason(O.Reason) {
  O.Owner = nullptr;
}

AdmissionTicket &AdmissionTicket::operator=(AdmissionTicket &&O) noexcept {
  if (this != &O) {
    release();
    Owner = O.Owner;
    BudgetBytes = O.BudgetBytes;
    QueueSeconds = O.QueueSeconds;
    Reason = O.Reason;
    O.Owner = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() { release(); }

void AdmissionTicket::release() {
  if (Owner) {
    Owner->release(BudgetBytes);
    Owner = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// AdmissionController
//===----------------------------------------------------------------------===//

AdmissionController::AdmissionController(Config C) : Cfg(C) {
  if (Cfg.MaxConcurrent < 1)
    Cfg.MaxConcurrent = 1;
  if (Cfg.MaxQueue < 0)
    Cfg.MaxQueue = 0;
}

AdmissionTicket AdmissionController::acquire(size_t RequestedBytes,
                                             double DeadlineSeconds) {
  static Counter &Admitted =
      MetricsRegistry::global().counter("serve.admitted");
  static Counter &Shed = MetricsRegistry::global().counter("serve.shed");
  static Histogram &QueueWait =
      MetricsRegistry::global().histogram("serve.queue_wait_seconds");

  using Clock = std::chrono::steady_clock;
  const auto Enqueued = Clock::now();
  AdmissionTicket T;

  std::unique_lock<std::mutex> Lock(Mu);
  if (Draining) {
    T.Reason = ShedReason::Draining;
    Shed.add();
    return T;
  }
  // The queue bound counts only requests *waiting* for a slot; a request
  // that can run immediately is never shed for queue depth.
  const bool MustWait = Running >= Cfg.MaxConcurrent;
  if (MustWait && Waiting >= Cfg.MaxQueue) {
    T.Reason = ShedReason::QueueFull;
    Shed.add();
    return T;
  }

  // Effective wait bound: the tighter of the server policy and the
  // request's own deadline (waiting past the deadline would only produce
  // an answer the client has already given up on).
  double WaitBound = Cfg.MaxQueueWaitSeconds;
  if (DeadlineSeconds > 0.0 &&
      (WaitBound <= 0.0 || DeadlineSeconds < WaitBound))
    WaitBound = DeadlineSeconds;

  const uint64_t MySeq = NextSeq++;
  ++Waiting;
  // A waiter is the FIFO head once every older sequence was served or
  // abandoned (shed waiters park their sequence in Abandoned so the head
  // pointer can step over them).
  const auto AtHead = [&] {
    while (!Abandoned.empty() && *Abandoned.begin() == ServeSeq) {
      Abandoned.erase(Abandoned.begin());
      ++ServeSeq;
    }
    return MySeq == ServeSeq;
  };
  while (true) {
    if (Draining) {
      T.Reason = ShedReason::Draining;
      break;
    }
    if (AtHead() && Running < Cfg.MaxConcurrent)
      break;
    if (WaitBound <= 0.0) {
      Cv.wait(Lock);
      continue;
    }
    const auto WaitUntil =
        Enqueued + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(WaitBound));
    if (Cv.wait_until(Lock, WaitUntil) == std::cv_status::timeout &&
        Clock::now() >= WaitUntil) {
      // Re-check the admission condition once under the lock — a slot may
      // have freed exactly at the deadline.
      if (AtHead() && Running < Cfg.MaxConcurrent)
        break;
      T.Reason = ShedReason::Timeout;
      break;
    }
  }
  --Waiting;
  const double Waited =
      std::chrono::duration<double>(Clock::now() - Enqueued).count();
  QueueWait.record(Waited);

  if (T.Reason != ShedReason::None) {
    if (MySeq == ServeSeq)
      ++ServeSeq;
    else
      Abandoned.insert(MySeq);
    Cv.notify_all();
    Shed.add();
    return T;
  }

  ++ServeSeq;
  ++Running;
  // The budget slice: the fair share of the daemon ceiling, tightened by
  // the client's own ask and by what is actually uncommitted right now.
  if (Cfg.BudgetBytes == 0) {
    T.BudgetBytes = RequestedBytes; // 0 = unlimited, like the CLI default
  } else {
    const size_t Fair =
        std::max<size_t>(Cfg.BudgetBytes /
                             static_cast<size_t>(Cfg.MaxConcurrent),
                         1);
    const size_t Available =
        Cfg.BudgetBytes > CommittedBytes ? Cfg.BudgetBytes - CommittedBytes : 1;
    size_t Slice = std::min(Fair, Available);
    if (RequestedBytes > 0)
      Slice = std::min(Slice, RequestedBytes);
    Slice = std::max<size_t>(Slice, 1);
    T.BudgetBytes = Slice;
    CommittedBytes += Slice;
  }
  T.Owner = this;
  T.QueueSeconds = Waited;
  Admitted.add();
  Cv.notify_all();
  return T;
}

void AdmissionController::release(size_t Bytes) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Cfg.BudgetBytes != 0)
      CommittedBytes = CommittedBytes >= Bytes ? CommittedBytes - Bytes : 0;
    --Running;
  }
  Cv.notify_all();
}

void AdmissionController::beginDrain() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Draining = true;
  }
  Cv.notify_all();
}

bool AdmissionController::awaitIdle(double TimeoutSeconds) {
  std::unique_lock<std::mutex> Lock(Mu);
  const auto Idle = [this] { return Running == 0; };
  if (TimeoutSeconds <= 0.0)
    return Idle();
  return Cv.wait_for(Lock, std::chrono::duration<double>(TimeoutSeconds),
                     Idle);
}

int64_t AdmissionController::inFlight() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Running;
}

int64_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Waiting;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Draining;
}

} // namespace genprove
