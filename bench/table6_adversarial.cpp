//===- bench/table6_adversarial.cpp - Table 6 reproduction ------*- C++ -*-===//
//
// Table 6: verification of adversarial generative interpolations on
// MNIST* with ConvBiggest trained three ways (standard, FGSM, DiffAI/Box).
// Columns: standard accuracy, PGD accuracy, Box-provable accuracy, and the
// GenProve bound width on the adversarial-tube specification.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/core/adversarial_spec.h"
#include "src/train/trainer.h"
#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Train = Zoo.train(DatasetId::Digits);
  const Dataset &Test = Zoo.test(DatasetId::Digits);
  Vae &Model = Zoo.vae(DatasetId::Digits);
  const double CertEps = Zoo.config().AdvEpsilon;
  const double AttackEps = Zoo.config().AttackEpsilon;
  const double TubeEps = Zoo.config().TubeEpsilon;

  std::printf("Table 6: adversarial generative interpolations on MNIST* "
              "(ConvBiggest)\n");
  std::printf("(paper: one eps = 0.1 at 28x28; at this scale the radii "
              "are split: PGD attack eps = %.2f, Box certification eps = "
              "%.3f, tube eps = %.3f)\n\n",
              AttackEps, CertEps, TubeEps);

  const Shape LatentShape({1, Model.latentDim()});
  const Shape ImgShape({1, Train.Channels, Train.Size, Train.Size});

  GenProveConfig Config;
  Config.RelaxPercent = Env.config().RelaxPercent;
  Config.ClusterK = Env.config().ClusterK;
  Config.NodeThreshold = Env.config().NodeThreshold;
  Config.MemoryBudgetBytes = Env.config().MemoryBudgetBytes;
  Config.Schedule = RefinementSchedule::A;
  const GenProve Analyzer(Config);

  TablePrinter Table({"Training scheme", "standard acc", "PGD acc",
                      "provable acc (Box)", "bound width (u-l)"});

  for (TrainScheme Scheme :
       {TrainScheme::Standard, TrainScheme::Fgsm, TrainScheme::DiffAiBox}) {
    Sequential &Net = Zoo.digitsClassifier(Scheme);
    const double CleanAcc = classifierAccuracy(Net, Test);
    Rng AttackRng(404);
    const double PgdAcc =
        pgdAccuracy(Net, Test, AttackEps, /*Steps=*/5, AttackRng);
    const double Provable = boxProvableAccuracy(Net, Test, CertEps);

    // The adversarial-tube specification over same-class interpolations.
    Rng PairRng(505);
    const auto Pairs = sameClassPairs(Train, 3, PairRng);
    double SumWidth = 0.0;
    for (const SpecPair &Pair : Pairs) {
      const Tensor E1 = Model.encode(Train.image(Pair.First));
      const Tensor E2 = Model.encode(Train.image(Pair.Second));
      const OutputSpec Spec = OutputSpec::argmaxWins(
          Train.Labels[static_cast<size_t>(Pair.First)], 10);
      const AnalysisResult Result = analyzeAdversarialTube(
          Analyzer, Model.decoder().view(), Net.view(), LatentShape, ImgShape,
          E1, E2, TubeEps, Spec);
      SumWidth += Result.Bounds.width();
    }
    const double MeanWidth = SumWidth / static_cast<double>(Pairs.size());

    const char *Name = Scheme == TrainScheme::Standard ? "Standard training"
                       : Scheme == TrainScheme::Fgsm
                           ? "Adversarial with FGSM"
                           : "Adversarial with DiffAI";
    Table.addRow({Name, formatPercent(CleanAcc), formatPercent(PgdAcc),
                  formatPercent(Provable), formatBound(MeanWidth)});
  }
  Table.print();
  std::printf("\nPaper shape: only the DiffAI-trained network has non-zero "
              "provable accuracy and a tube bound width well below 1.\n");
  return 0;
}
