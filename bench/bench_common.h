//===- bench/bench_common.h - Shared harness for the paper tables -*- C++ -*-===//
///
/// \file
/// Every table in the paper's evaluation draws from the same experiment
/// grid: {CelebA*, Zappos50k*} x {ConvSmall, ConvMed, ConvLarge} x
/// {Box, HybridZono, Zonotope, DeepZono, BASELINE, GenProve-Det,
///  GenProve^0, GenProve^p_k, Sampling}. Because the whole reproduction
/// runs on one CPU core, the grid is computed once and cached as CSV under
/// results/; each table binary loads the cache (or computes the missing
/// cells) and prints its own projection of the grid.
///
/// Scaling knobs relative to the paper (documented in EXPERIMENTS.md):
/// 16x16 images, latent 8, |P| pairs per cell reduced from 100, and a
/// simulated device memory budget standing in for the Titan RTX's 24 GB.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_BENCH_COMMON_H
#define GENPROVE_BENCH_COMMON_H

#include "src/core/consistency.h"
#include "src/core/model_zoo.h"
#include "src/sampling/sampler.h"

#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace genprove {

/// The verification methods compared across the tables.
enum class Method : int {
  Box = 0,
  HybridZono,
  Zonotope,
  DeepZono,
  Baseline,       ///< exact deterministic (Sotoudeh & Thakur, GPU version)
  GenProveDet,    ///< relaxed deterministic
  GenProveExact,  ///< GenProve^0 (exact probabilistic)
  GenProveRelax,  ///< GenProve^p_k (relaxed probabilistic)
  Sampling,       ///< Clopper-Pearson at 99.999%
  NumMethods,
};

const char *methodName(Method M);

/// One cell of the experiment grid, aggregated over |P| pairs.
struct GridCell {
  std::string DatasetName;
  std::string NetworkName;
  Method Which = Method::Box;
  int64_t Neurons = 0;
  int64_t NumPairs = 0;
  int64_t NumBounds = 0;
  double MeanWidth = 1.0;
  double MeanLower = 0.0;
  double MeanUpper = 1.0;
  double FractionNonTrivial = 0.0;
  double FractionOom = 0.0;
  double MeanSeconds = 0.0;
  double PeakGb = 0.0; ///< simulated device memory, in (scaled) GB.
  // Engine telemetry (GenProve-family methods; 0 for the convex domains
  // and the sampling baseline).
  int64_t MaxRegions = 0;
  int64_t MaxNodes = 0;
  int64_t Retries = 0;
  // Resilience telemetry (non-zero only when BenchConfig::Resilient):
  // lets trajectory plots distinguish cells that ran exact, relaxed or
  // degraded instead of lumping every completed cell together.
  double FractionDegraded = 0.0; ///< pairs that finished on a degraded rung.
  int64_t MaxRung = 0;           ///< worst DegradeRung over the cell's pairs.
  int64_t Rollbacks = 0;         ///< checkpoint rollbacks, summed.
  int64_t FallbackBoxLayers = 0; ///< layers run at the interval fallback.
  int64_t DeadlineHits = 0;      ///< pairs whose deadline expired.

  /// "exact" / "relaxed" / "degraded": the coarsest thing that happened to
  /// any pair in this cell (degraded > relaxed > exact). A cell is relaxed
  /// when its method boxes by configuration or a refinement retry fired.
  const char *modeName() const {
    if (FractionDegraded > 0.0)
      return "degraded";
    if (Retries > 0 || Which == Method::GenProveRelax ||
        Which == Method::GenProveDet)
      return "relaxed";
    return "exact";
  }
};

/// Harness configuration for all bench binaries.
struct BenchConfig {
  int64_t PairsPerCell = 2;
  int64_t ZonoPairsPerCell = 1; ///< convex domains: deterministic outcome.
  int64_t SamplesPerPair = 4000;
  double SamplingAlpha = 1e-5; ///< 99.999% confidence.
  double RelaxPercent = 0.02;
  double ClusterK = 100.0;
  int64_t NodeThreshold = 250; ///< paper: 1000 at 4x our scale.
  size_t MemoryBudgetBytes = 240ull << 20; ///< 24 GB scaled 1:100.
  /// Run the GenProve-family methods with the resilience layer on: OOM
  /// degrades in place instead of counting into FractionOom, and the
  /// degradation telemetry below lands in the grid and run report. Off by
  /// default so the cached tables keep the paper's abort-on-OOM semantics.
  bool Resilient = false;
  /// Per-pair propagation deadline in seconds when Resilient; 0 = none.
  double DeadlineSeconds = 0.0;
  /// Shard the input range N ways (realized as InputSplits in-process; the
  /// CLI's --shards path runs the same partition in worker processes).
  /// Part of the cache fingerprint: shard-count changes re-associate the
  /// bound sums, so cells computed under a different count are recomputed.
  int64_t Shards = 1;
  /// Propagate up to this many of a cell's pairs as ONE batched abstract
  /// state (stacked GEMM rows; docs/PERFORMANCE.md). Per-pair bounds are
  /// bit-identical to the width-1 run, but the joint-run telemetry cells
  /// (peak memory, max regions/nodes) describe the shared propagation, so
  /// the knob is part of the cache fingerprint.
  int64_t BatchWidth = 1;
  /// Byte budget handed to the process-wide PropagationCache; 0 keeps the
  /// cache off. Warm starts change per-cell wall-clock (MeanSeconds), so
  /// this too is part of the cache fingerprint.
  size_t CacheBudgetBytes = 0;
  std::string ResultsDir = "results";
};

/// The shared environment: trained models + grid cache.
class BenchEnv {
public:
  explicit BenchEnv(BenchConfig Config = {});

  ModelZoo &zoo() { return Zoo; }
  const BenchConfig &config() const { return Config; }

  /// The consistency grid cell for (dataset, net, method); computed on
  /// first use and cached to results/grid.csv across runs.
  const GridCell &cell(DatasetId Dataset, const std::string &Network,
                       Method Which);

  /// One grid coordinate for prefetchCells.
  struct CellRequest {
    DatasetId Dataset;
    std::string Network;
    Method Which;
  };

  /// Compute every not-yet-cached requested cell, fanning independent
  /// cells out over the thread pool (cells are pure functions of the
  /// BenchConfig, so concurrent evaluation yields byte-identical grid.csv
  /// rows to sequential evaluation). Lazily-trained models are warmed
  /// serially first; the only shared mutable state during the fan-out is
  /// the VAE encoder (it caches activations), which is mutex-guarded.
  /// Subsequent cell() calls for these coordinates are cache hits.
  void prefetchCells(const std::vector<CellRequest> &Requests);

  /// Classifier or attribute detector for the dataset/architecture.
  Sequential &targetNetwork(DatasetId Dataset, const std::string &Network);

  /// Persist the grid cache now (also done on destruction).
  void saveCache();

  /// Hash of every BenchConfig knob that influences cell values. Written
  /// as a header line of results/grid.csv, so a cache computed under
  /// different knobs (RelaxPercent, PairsPerCell, ...) is discarded
  /// instead of silently served stale.
  std::string configFingerprint() const;

  /// Write results/run_report.json: the config (with fingerprint), every
  /// grid cell with a fresh/cached flag, and the global metrics snapshot.
  /// Also done on destruction, so every bench binary leaves a report.
  void writeRunReport();

  ~BenchEnv();

private:
  GridCell computeCell(DatasetId Dataset, const std::string &Network,
                       Method Which);
  std::string cacheKey(DatasetId Dataset, const std::string &Network,
                       Method Which) const;
  void loadCache();

  BenchConfig Config;
  ModelZoo Zoo;
  std::map<std::string, GridCell> Cache;
  std::set<std::string> FreshKeys; ///< keys computed by this process
  bool Dirty = false;
  /// Serializes Vae::encode during parallel cell evaluation (the encoder
  /// caches per-layer activations for backward, so predict mutates).
  std::mutex EncodeMu;
};

/// The "scaled GB" display: the simulated budget stands in for 24 GB, so
/// peak bytes are reported on that scale for direct comparison with the
/// paper's tables.
double toScaledGb(size_t Bytes, size_t BudgetBytes);

} // namespace genprove

#endif // GENPROVE_BENCH_COMMON_H
