//===- bench/table7_ood.cpp - Table 7 reproduction --------------*- C++ -*-===//
//
// Table 7: comparing the realism of VAE / FactorVAE / ACAI interpolations
// with a GAN-discriminator OOD detector, under the arcsine-distributed
// interpolation specification between two *unrelated* images. The reported
// number is the upper bound on the probability that the discriminator
// flags the generated image as fake (lower = generator fools it more).
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Sequential &Discriminator = Zoo.ganDiscriminator();
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  (void)ImgShape;

  std::printf("Table 7: OOD-detector upper bound under the arcsine "
              "interpolation specification (unrelated-image pairs)\n\n");

  GenProveConfig Config;
  Config.RelaxPercent = Env.config().RelaxPercent;
  Config.ClusterK = Env.config().ClusterK;
  Config.NodeThreshold = Env.config().NodeThreshold;
  Config.MemoryBudgetBytes = Env.config().MemoryBudgetBytes;
  Config.Schedule = RefinementSchedule::A;
  Config.Distribution = ParamDistribution::Arcsine;
  const GenProve Analyzer(Config);

  // An unrelated pair: different attribute signatures.
  Rng R(606);
  int64_t First = 0, Second = 1;
  for (int64_t Trial = 0; Trial < 100; ++Trial) {
    const int64_t A = static_cast<int64_t>(R.below(Set.numImages()));
    const int64_t B = static_cast<int64_t>(R.below(Set.numImages()));
    bool Differ = false;
    for (int64_t J = 0; J < Set.numAttributes(); ++J)
      if (Set.Attributes.at(A, J) != Set.Attributes.at(B, J))
        Differ = true;
    if (Differ && A != B) {
      First = A;
      Second = B;
      break;
    }
  }

  // Spec D: "discriminator says fake" = score below a threshold. LSGAN
  // trains real -> 1, fake -> 0, but at this scale every decoded image
  // scores below 0.5, so the threshold is calibrated to the midpoint
  // between the discriminator's mean score on real images and on VAE
  // reconstructions (the natural operating point of the detector).
  double RealMean = 0.0, ReconMean = 0.0;
  {
    Vae &Cal = Zoo.vae(DatasetId::Faces);
    const int64_t N = 50;
    for (int64_t I = 0; I < N; ++I) {
      const Tensor Img = Set.image(I);
      RealMean += Discriminator.predict(Img)[0];
      ReconMean += Discriminator.predict(Cal.decode(Cal.encode(Img)))[0];
    }
    RealMean /= static_cast<double>(N);
    ReconMean /= static_cast<double>(N);
  }
  // Interpolations of unrelated images score below reconstructions, so
  // the detection threshold sits one real-vs-recon gap *below* the
  // reconstruction score: anything less realistic than that reads fake.
  const double Threshold = 2.0 * ReconMean - RealMean;
  std::printf("calibrated fake threshold: %.4f (real mean %.4f, recon mean "
              "%.4f)\n\n",
              Threshold, RealMean, ReconMean);
  Tensor Normal({1, 1}, {-1.0});
  const OutputSpec FakeSpec = OutputSpec::halfspace(Normal, Threshold);

  TablePrinter Table({"Model", "Upper Bound", "Bound Width"});

  struct Row {
    const char *Name;
    Sequential *Decoder;
    Tensor E1, E2;
  };
  std::vector<Row> Rows;
  {
    Vae &Model = Zoo.vae(DatasetId::Faces);
    Rows.push_back({"VAE", &Model.decoder(),
                    Model.encode(Set.image(First)),
                    Model.encode(Set.image(Second))});
  }
  {
    FactorVae &Model = Zoo.facesFactorVae();
    Rows.push_back({"FactorVAE", &Model.decoder(),
                    Model.encode(Set.image(First)),
                    Model.encode(Set.image(Second))});
  }
  {
    Acai &Model = Zoo.facesAcai();
    Rows.push_back({"ACAI", &Model.decoder(),
                    Model.encode(Set.image(First)),
                    Model.encode(Set.image(Second))});
  }

  for (Row &Entry : Rows) {
    const auto Pipeline =
        concatViews(Entry.Decoder->view(), Discriminator.view());
    const Shape LatentShape({1, Entry.E1.numel()});
    const PropagatedState State = Analyzer.propagateSegment(
        Pipeline, LatentShape, Entry.E1, Entry.E2);
    const ProbBounds Bounds = Analyzer.boundsFor(State, FakeSpec);
    Table.addRow({Entry.Name, formatBound(Bounds.Upper),
                  formatBound(Bounds.width())});
  }
  Table.print();
  std::printf("\nPaper expectation: ACAI (trained for realistic "
              "interpolations) achieves the lowest upper bound, then "
              "FactorVAE, then the plain VAE. At this training scale (4 "
              "CPU epochs) the adversarially-regularized generators do not "
              "reliably out-interpolate the plain VAE; the measured "
              "ordering is discussed in EXPERIMENTS.md.\n");
  return 0;
}
