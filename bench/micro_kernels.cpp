//===- bench/micro_kernels.cpp - kernel microbenchmarks ---------*- C++ -*-===//
//
// google-benchmark microbenchmarks of the kernels the verifier spends its
// time in: matmul, im2col convolution, transposed convolution, segment
// ReLU splitting, relaxation, and degree-1 vs degree-2 propagation (the
// GenProveCurve ablation from DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "src/domains/propagate.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

#include <benchmark/benchmark.h>

namespace {

using namespace genprove;

void BM_Matmul(benchmark::State &State) {
  const int64_t N = State.range(0);
  Rng R(1);
  Tensor A = Tensor::randn({N, N}, R);
  Tensor B = Tensor::randn({N, N}, R);
  for (auto _ : State) {
    Tensor C = matmul(A, B);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * N * N * N);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2d(benchmark::State &State) {
  const int64_t Batch = State.range(0);
  Rng R(2);
  ConvGeometry G;
  G.InChannels = 16;
  G.OutChannels = 32;
  G.KernelH = G.KernelW = 4;
  G.Stride = 2;
  G.Padding = 1;
  Tensor In = Tensor::randn({Batch, 16, 16, 16}, R);
  Tensor W = Tensor::randn({32, 16, 4, 4}, R);
  Tensor B = Tensor::randn({32}, R);
  for (auto _ : State) {
    Tensor Out = conv2d(In, W, B, G);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * Batch);
}
BENCHMARK(BM_Conv2d)->Arg(1)->Arg(16)->Arg(64);

void BM_ConvTranspose2d(benchmark::State &State) {
  const int64_t Batch = State.range(0);
  Rng R(3);
  ConvGeometry G;
  G.InChannels = 32;
  G.OutChannels = 16;
  G.KernelH = G.KernelW = 3;
  G.Stride = 2;
  G.Padding = 1;
  G.OutputPadding = 1;
  Tensor In = Tensor::randn({Batch, 32, 8, 8}, R);
  Tensor W = Tensor::randn({32, 16, 3, 3}, R);
  Tensor B = Tensor::randn({16}, R);
  for (auto _ : State) {
    Tensor Out = convTranspose2d(In, W, B, G);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * Batch);
}
BENCHMARK(BM_ConvTranspose2d)->Arg(1)->Arg(16);

/// Segment vs quadratic propagation through a random MLP: the degree-2
/// overhead ablation.
void propagateDegree(benchmark::State &State, int Degree) {
  Rng R(4);
  Sequential Net;
  const std::vector<int64_t> Dims{8, 64, 64, 10};
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.5);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.3);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  Tensor A0 = Tensor::randn({1, 8}, R);
  Tensor A1 = Tensor::randn({1, 8}, R);
  Tensor A2 = Tensor::randn({1, 8}, R);

  for (auto _ : State) {
    std::vector<Region> Init;
    if (Degree == 1)
      Init.push_back(makeSegmentRegion(A0, A1));
    else
      Init.push_back(makeQuadraticRegion(A0, A1, A2));
    PropagateConfig Config;
    DeviceMemoryModel Memory;
    PropagateStats Stats;
    auto Final = propagateRegions(Net.view(), Shape({1, 8}), std::move(Init),
                                  Config, Memory, Stats);
    benchmark::DoNotOptimize(Final.size());
  }
}

void BM_PropagateSegment(benchmark::State &State) {
  propagateDegree(State, 1);
}
BENCHMARK(BM_PropagateSegment);

void BM_PropagateQuadratic(benchmark::State &State) {
  propagateDegree(State, 2);
}
BENCHMARK(BM_PropagateQuadratic);

void BM_RelaxHeuristic(benchmark::State &State) {
  const int64_t NumPieces = State.range(0);
  Rng R(5);
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<Region> Chain;
    Tensor Prev = Tensor::randn({1, 32}, R);
    for (int64_t I = 0; I < NumPieces; ++I) {
      Tensor Next = Prev.clone();
      for (int64_t J = 0; J < 32; ++J)
        Next[J] += R.normal(0.0, 0.05);
      const double T0 = static_cast<double>(I) / NumPieces;
      const double T1 = static_cast<double>(I + 1) / NumPieces;
      Chain.push_back(makeSegmentRegion(Prev, Next, T1 - T0, T0, T1));
      Prev = Next;
    }
    State.ResumeTiming();
    RelaxConfig Config;
    Config.RelaxPercent = 0.5;
    Config.ClusterK = 50.0;
    Config.NodeThreshold = 100;
    relaxRegions(Chain, Config);
    benchmark::DoNotOptimize(Chain.size());
  }
}
BENCHMARK(BM_RelaxHeuristic)->Arg(1000)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
