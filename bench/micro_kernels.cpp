//===- bench/micro_kernels.cpp - kernel microbenchmarks ---------*- C++ -*-===//
//
// google-benchmark microbenchmarks of the kernels the verifier spends its
// time in: matmul (tiled vs the pre-optimization naive kernel, across
// sizes and thread counts), im2col convolution, transposed convolution,
// concurrent grid-cell style propagation, segment ReLU splitting,
// relaxation, and degree-1 vs degree-2 propagation (the GenProveCurve
// ablation from DESIGN.md).
//
// Emit the machine-readable record with:
//   micro_kernels --benchmark_out=BENCH_kernels.json --benchmark_out_format=json
//
// BM_Instrumentation measures the telemetry plane's own cost — the same
// propagation with metrics off (the relaxed-load fast path) vs on — and is
// recorded separately:
//   micro_kernels --benchmark_filter=BM_Instrumentation \
//                 --benchmark_out=BENCH_obs.json --benchmark_out_format=json
//
// BM_PropagatePerSpec / BM_PropagateBatched / BM_CacheWarmStart measure
// the cross-query amortization layer (docs/PERFORMANCE.md): many segment
// specs through one shared decoder, sequentially vs as one stacked
// abstract state, and a repeated query cold vs warm-started from the
// propagation cache. CI records them to BENCH_batch.json:
//   micro_kernels --benchmark_filter='BM_Propagate(PerSpec|Batched)|BM_CacheWarmStart' \
//                 --benchmark_out=BENCH_batch.json --benchmark_out_format=json
//
// BM_PropagateLayerPair / BM_FusedChain / BM_TwoTier measure the fused
// affine->ReLU kernel chains and the two-tier screened fast path; CI's
// fused-kernel-smoke job records them into BENCH_kernels.json and gates
// BM_FusedChain >= 1.3x over BM_PropagateLayerPair at threads=1 (min
// cpu_time over the repetitions):
//   micro_kernels --benchmark_filter='BM_PropagateLayerPair|BM_FusedChain|BM_TwoTier' \
//                 --benchmark_repetitions=3 \
//                 --benchmark_out=BENCH_kernels.json --benchmark_out_format=json
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/prop_cache.h"
#include "src/domains/propagate.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/obs/metrics.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/ops.h"
#include "src/util/fp.h"
#include "src/util/rng.h"

#include <benchmark/benchmark.h>

namespace {

using namespace genprove;

/// The seed's GEMM: plain i-k-j triple loop with the zero-skip branch,
/// always serial. Kept verbatim as the reference the tiled kernel is
/// measured against (BM_Matmul / BM_MatmulNaive at threads=1 isolates the
/// tiling + unrolling win from the threading win).
Tensor naiveMatmul(const Tensor &A, const Tensor &B) {
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  double *Cd = C.data();
  for (int64_t I = 0; I < M; ++I)
    for (int64_t Kk = 0; Kk < K; ++Kk) {
      const double Aik = Ad[I * K + Kk];
      if (Aik == 0.0)
        continue;
      const double *Brow = Bd + Kk * N;
      double *Crow = Cd + I * N;
      for (int64_t J = 0; J < N; ++J)
        Crow[J] += Aik * Brow[J];
    }
  return C;
}

/// Pin the pool to State.range(1) threads for the benchmark body.
struct PoolScope {
  explicit PoolScope(int64_t Threads) {
    ThreadPool::global().setThreads(Threads);
  }
  ~PoolScope() { ThreadPool::global().setThreads(ThreadPool::envThreads()); }
};

void BM_Matmul(benchmark::State &State) {
  const int64_t N = State.range(0);
  PoolScope Scope(State.range(1));
  Rng R(1);
  Tensor A = Tensor::randn({N, N}, R);
  Tensor B = Tensor::randn({N, N}, R);
  for (auto _ : State) {
    Tensor C = matmul(A, B);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * N * N * N);
}
BENCHMARK(BM_Matmul)
    ->ArgNames({"n", "threads"})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({128, 2})
    ->Args({256, 2})
    ->Args({512, 2})
    ->Args({128, 4})
    ->Args({256, 4})
    ->Args({512, 4});

void BM_MatmulNaive(benchmark::State &State) {
  const int64_t N = State.range(0);
  Rng R(1);
  Tensor A = Tensor::randn({N, N}, R);
  Tensor B = Tensor::randn({N, N}, R);
  for (auto _ : State) {
    Tensor C = naiveMatmul(A, B);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * N * N * N);
}
BENCHMARK(BM_MatmulNaive)->ArgName("n")->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_MatmulTransB(benchmark::State &State) {
  const int64_t N = State.range(0);
  PoolScope Scope(State.range(1));
  Rng R(6);
  Tensor A = Tensor::randn({N, N}, R);
  Tensor B = Tensor::randn({N, N}, R);
  for (auto _ : State) {
    Tensor C = matmulTransB(A, B);
    benchmark::DoNotOptimize(C.data());
  }
  State.SetItemsProcessed(State.iterations() * N * N * N);
}
BENCHMARK(BM_MatmulTransB)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 4});

void BM_Conv2d(benchmark::State &State) {
  const int64_t Batch = State.range(0);
  PoolScope Scope(State.range(1));
  Rng R(2);
  ConvGeometry G;
  G.InChannels = 16;
  G.OutChannels = 32;
  G.KernelH = G.KernelW = 4;
  G.Stride = 2;
  G.Padding = 1;
  Tensor In = Tensor::randn({Batch, 16, 16, 16}, R);
  Tensor W = Tensor::randn({32, 16, 4, 4}, R);
  Tensor B = Tensor::randn({32}, R);
  for (auto _ : State) {
    Tensor Out = conv2d(In, W, B, G);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * Batch);
}
BENCHMARK(BM_Conv2d)
    ->ArgNames({"batch", "threads"})
    ->Args({1, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({16, 4})
    ->Args({64, 4});

void BM_ConvTranspose2d(benchmark::State &State) {
  const int64_t Batch = State.range(0);
  PoolScope Scope(State.range(1));
  Rng R(3);
  ConvGeometry G;
  G.InChannels = 32;
  G.OutChannels = 16;
  G.KernelH = G.KernelW = 3;
  G.Stride = 2;
  G.Padding = 1;
  G.OutputPadding = 1;
  Tensor In = Tensor::randn({Batch, 32, 8, 8}, R);
  Tensor W = Tensor::randn({32, 16, 3, 3}, R);
  Tensor B = Tensor::randn({16}, R);
  for (auto _ : State) {
    Tensor Out = convTranspose2d(In, W, B, G);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * Batch);
}
BENCHMARK(BM_ConvTranspose2d)
    ->ArgNames({"batch", "threads"})
    ->Args({1, 1})
    ->Args({16, 1})
    ->Args({16, 4});

/// Grid-cell style concurrency: independent propagations through
/// independent networks fanned out over the pool, the same shape as
/// BenchEnv::prefetchCells. items_per_second is cells/s; the threads=1 vs
/// threads=4 ratio is the harness-level scaling number recorded in
/// BENCH_kernels.json.
void BM_ConcurrentCells(benchmark::State &State) {
  const int64_t NumCells = 8;
  PoolScope Scope(State.range(0));
  Rng R(8);
  std::vector<Sequential> Nets;
  std::vector<Tensor> Starts, Ends;
  for (int64_t C = 0; C < NumCells; ++C) {
    Sequential Net;
    const std::vector<int64_t> Dims{8, 48, 48, 10};
    for (size_t I = 0; I + 1 < Dims.size(); ++I) {
      auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
      L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.5);
      L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.3);
      Net.add(std::move(L));
      if (I + 2 < Dims.size())
        Net.add(std::make_unique<ReLU>());
    }
    Nets.push_back(std::move(Net));
    Starts.push_back(Tensor::randn({1, 8}, R));
    Ends.push_back(Tensor::randn({1, 8}, R));
  }
  for (auto _ : State) {
    std::vector<size_t> Sizes(static_cast<size_t>(NumCells));
    parallelFor(NumCells, 1, [&](int64_t Begin, int64_t End) {
      for (int64_t I = Begin; I < End; ++I) {
        PropagateConfig Config;
        DeviceMemoryModel Memory;
        PropagateStats Stats;
        std::vector<Region> Init{
            makeSegmentRegion(Starts[static_cast<size_t>(I)],
                              Ends[static_cast<size_t>(I)])};
        auto Final = propagateRegions(Nets[static_cast<size_t>(I)].view(),
                                      Shape({1, 8}), std::move(Init), Config,
                                      Memory, Stats);
        Sizes[static_cast<size_t>(I)] = Final.size();
      }
    });
    benchmark::DoNotOptimize(Sizes.data());
  }
  State.SetItemsProcessed(State.iterations() * NumCells);
}
BENCHMARK(BM_ConcurrentCells)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

/// Segment vs quadratic propagation through a random MLP: the degree-2
/// overhead ablation.
void propagateDegree(benchmark::State &State, int Degree) {
  Rng R(4);
  Sequential Net;
  const std::vector<int64_t> Dims{8, 64, 64, 10};
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.5);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.3);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  Tensor A0 = Tensor::randn({1, 8}, R);
  Tensor A1 = Tensor::randn({1, 8}, R);
  Tensor A2 = Tensor::randn({1, 8}, R);

  for (auto _ : State) {
    std::vector<Region> Init;
    if (Degree == 1)
      Init.push_back(makeSegmentRegion(A0, A1));
    else
      Init.push_back(makeQuadraticRegion(A0, A1, A2));
    PropagateConfig Config;
    DeviceMemoryModel Memory;
    PropagateStats Stats;
    auto Final = propagateRegions(Net.view(), Shape({1, 8}), std::move(Init),
                                  Config, Memory, Stats);
    benchmark::DoNotOptimize(Final.size());
  }
}

void BM_PropagateSegment(benchmark::State &State) {
  propagateDegree(State, 1);
}
BENCHMARK(BM_PropagateSegment);

void BM_PropagateQuadratic(benchmark::State &State) {
  propagateDegree(State, 2);
}
BENCHMARK(BM_PropagateQuadratic);

/// Instrumentation overhead: one full propagation with the metrics switch
/// off (arg 0 — every counter site is a single relaxed atomic load) vs on
/// (arg 1 — loads plus relaxed fetch-adds and histogram records). The
/// off/on time ratio is the number the "disabled telemetry costs nothing"
/// claim in docs/OBSERVABILITY.md stands on; CI records it to
/// BENCH_obs.json. Tracing stays off in both arms: the trace buffer grows
/// without bound across benchmark iterations and would measure allocation,
/// not instrumentation.
void BM_Instrumentation(benchmark::State &State) {
  const bool Enable = State.range(0) != 0;
  const bool SavedMetrics = metricsEnabled();
  setMetricsEnabled(Enable);
  Rng R(7);
  Sequential Net;
  const std::vector<int64_t> Dims{8, 64, 64, 10};
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.5);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.3);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  Tensor A0 = Tensor::randn({1, 8}, R);
  Tensor A1 = Tensor::randn({1, 8}, R);
  for (auto _ : State) {
    std::vector<Region> Init{makeSegmentRegion(A0, A1)};
    PropagateConfig Config;
    DeviceMemoryModel Memory;
    PropagateStats Stats;
    auto Final = propagateRegions(Net.view(), Shape({1, 8}), std::move(Init),
                                  Config, Memory, Stats);
    benchmark::DoNotOptimize(Final.size());
  }
  setMetricsEnabled(SavedMetrics);
}
BENCHMARK(BM_Instrumentation)->ArgName("metrics")->Arg(0)->Arg(1);

//===----------------------------------------------------------------------===//
// Cross-query amortization (docs/PERFORMANCE.md): the shared-decoder
// workload — many latent segments against ONE frozen pipeline — run
// per-spec (the pre-batching shape: one propagation per segment) vs as a
// single stacked abstract state whose affine layers see every segment's
// rows in one production-sized GEMM. Bounds are bit-identical either way;
// the wall-clock ratio is the batching win recorded in BENCH_batch.json.
//===----------------------------------------------------------------------===//

Sequential sharedDecoder(Rng &R) {
  Sequential Net;
  const std::vector<int64_t> Dims{8, 128, 128, 10};
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.5);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.3);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

/// Tight segments — the certification traffic shape: each query perturbs
/// a latent point slightly, so it crosses few ReLUs and its per-layer
/// GEMMs are a handful of rows. That is where stacking K queries into
/// one call pays most (the affine work per query is call-overhead-bound).
std::vector<std::pair<Tensor, Tensor>> sharedDecoderSegments(int64_t K,
                                                             Rng &R) {
  std::vector<std::pair<Tensor, Tensor>> Segments;
  for (int64_t I = 0; I < K; ++I) {
    Tensor Start = Tensor::randn({1, 8}, R);
    Tensor End = Start.clone();
    for (int64_t J = 0; J < 8; ++J)
      End[J] += R.normal(0.0, 0.02);
    Segments.emplace_back(std::move(Start), std::move(End));
  }
  return Segments;
}

void BM_PropagatePerSpec(benchmark::State &State) {
  const int64_t NumSpecs = State.range(0);
  PoolScope Scope(State.range(1));
  Rng R(9);
  Sequential Net = sharedDecoder(R);
  const auto Segments = sharedDecoderSegments(NumSpecs, R);
  const GenProve Analyzer(GenProveConfig{});
  for (auto _ : State) {
    size_t Regions = 0;
    for (const auto &[Start, End] : Segments) {
      const PropagatedState Final =
          Analyzer.propagateSegment(Net.view(), Shape({1, 8}), Start, End);
      Regions += Final.Regions.size();
    }
    benchmark::DoNotOptimize(Regions);
  }
  State.SetItemsProcessed(State.iterations() * NumSpecs);
}
BENCHMARK(BM_PropagatePerSpec)
    ->ArgNames({"specs", "threads"})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({16, 4})
    ->Args({64, 4});

void BM_PropagateBatched(benchmark::State &State) {
  const int64_t NumSpecs = State.range(0);
  PoolScope Scope(State.range(1));
  Rng R(9);
  Sequential Net = sharedDecoder(R);
  const auto Segments = sharedDecoderSegments(NumSpecs, R);
  const GenProve Analyzer(GenProveConfig{});
  for (auto _ : State) {
    const std::vector<PropagatedState> Finals =
        Analyzer.propagateSegmentsBatch(Net.view(), Shape({1, 8}), Segments);
    size_t Regions = 0;
    for (const PropagatedState &Final : Finals)
      Regions += Final.Regions.size();
    benchmark::DoNotOptimize(Regions);
  }
  State.SetItemsProcessed(State.iterations() * NumSpecs);
}
BENCHMARK(BM_PropagateBatched)
    ->ArgNames({"specs", "threads"})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({16, 4})
    ->Args({64, 4});

/// The full amortization layer on hot traffic: the same ≥16-spec
/// shared-decoder workload as BM_PropagatePerSpec, propagated as ONE
/// batched abstract state with the propagation cache on. The first
/// iteration runs cold and stores every boundary state; every following
/// iteration — the steady state of repeated-spec serve traffic — warm
/// starts past the whole pipeline. BM_PropagatePerSpec vs this ratio is
/// the headline ≥2x amortization number CI asserts from BENCH_batch.json
/// (bounds stay bit-identical: a warm start only skips work).
void BM_PropagateAmortized(benchmark::State &State) {
  const int64_t NumSpecs = State.range(0);
  Rng R(9); // same seed as PerSpec/Batched: identical workload
  Sequential Net = sharedDecoder(R);
  const auto Segments = sharedDecoderSegments(NumSpecs, R);
  const GenProve Analyzer(GenProveConfig{});
  PropagationCache::global().configure(64u << 20);
  for (auto _ : State) {
    const std::vector<PropagatedState> Finals =
        Analyzer.propagateSegmentsBatch(Net.view(), Shape({1, 8}), Segments);
    size_t Regions = 0;
    for (const PropagatedState &Final : Finals)
      Regions += Final.Regions.size();
    benchmark::DoNotOptimize(Regions);
  }
  PropagationCache::global().configure(0);
  State.SetItemsProcessed(State.iterations() * NumSpecs);
}
BENCHMARK(BM_PropagateAmortized)->ArgName("specs")->Arg(16)->Arg(32);

/// A repeated query, cold (cache off, full propagation every time) vs
/// warm (the propagation cache holds the final boundary state, so the
/// repeat skips every layer). The ratio bounds what the serve daemon's
/// hot repeated-spec traffic can save per request.
void BM_CacheWarmStart(benchmark::State &State) {
  const bool Warm = State.range(0) != 0;
  Rng R(10);
  Sequential Net = sharedDecoder(R);
  const Tensor Start = Tensor::randn({1, 8}, R);
  const Tensor End = Tensor::randn({1, 8}, R);
  const GenProve Analyzer(GenProveConfig{});
  PropagationCache::global().configure(Warm ? (64u << 20) : 0);
  if (Warm) // prime: the first propagation stores every boundary state
    Analyzer.propagateSegment(Net.view(), Shape({1, 8}), Start, End);
  for (auto _ : State) {
    const PropagatedState Final =
        Analyzer.propagateSegment(Net.view(), Shape({1, 8}), Start, End);
    benchmark::DoNotOptimize(Final.Regions.size());
  }
  PropagationCache::global().configure(0);
}
BENCHMARK(BM_CacheWarmStart)->ArgName("warm")->Arg(0)->Arg(1);

//===----------------------------------------------------------------------===//
// Fused affine->ReLU chains and the two-tier screen (docs/PERFORMANCE.md).
// BM_PropagateLayerPair is the unfused baseline: each Linear->ReLU pair
// round-trips the abstract state through memory (node GEMM + center GEMM +
// radius |W| GEMM, then a separate rectification pass). BM_FusedChain runs
// the same pipeline with Config.FuseRelu: the box planes stream through
// fusedBoxAffineTransB (one sweep of W instead of two) and the ReLU is
// applied while the rows are cache-hot. Bounds are bit-identical; the
// wall-clock ratio is the fusion win CI asserts (>= 1.3x at threads=1)
// from BENCH_kernels.json.
//===----------------------------------------------------------------------===//

Sequential deepPairChain(Rng &R) {
  Sequential Net;
  const std::vector<int64_t> Dims{64, 512, 512, 512, 512, 10};
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.3);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.2);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

void propagatePairChain(benchmark::State &State, bool Fuse) {
  PoolScope Scope(State.range(0));
  Rng R(11);
  Sequential Net = deepPairChain(R);
  const Tensor Start = Tensor::randn({1, 64}, R, 0.1);
  Tensor End = Start.clone();
  for (int64_t J = 0; J < 64; ++J)
    End[J] += R.normal(0.0, 0.05);
  GenProveConfig Config;
  Config.FuseRelu = Fuse;
  const GenProve Analyzer(Config);
  for (auto _ : State) {
    const PropagatedState Final =
        Analyzer.propagateSegment(Net.view(), Shape({1, 64}), Start, End);
    benchmark::DoNotOptimize(Final.Regions.size());
  }
}

void BM_PropagateLayerPair(benchmark::State &State) {
  propagatePairChain(State, false);
}
BENCHMARK(BM_PropagateLayerPair)->ArgName("threads")->Arg(1)->Arg(4);

void BM_FusedChain(benchmark::State &State) { propagatePairChain(State, true); }
BENCHMARK(BM_FusedChain)->ArgName("threads")->Arg(1)->Arg(4);

/// The two-tier precision fast path on clearly-decidable traffic: the
/// same analysis with the full sound double tier (screen:0) vs
/// --fast-screen (screen:1), where the float32 screen proves every piece
/// inside and the sound tier is never entered. Both runs report sound
/// bounds; the ratio is the screening win on traffic whose specs hold
/// with a margin (the common certification case).
void BM_TwoTier(benchmark::State &State) {
  const bool Screen = State.range(0) != 0;
  SoundRoundingScope Sound(true);
  Rng R(12);
  Sequential Net;
  const std::vector<int64_t> Dims{8, 96, 96, 10};
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.4);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.2);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  const Tensor Start = Tensor::randn({1, 8}, R, 0.3);
  const Tensor End = Tensor::randn({1, 8}, R, 0.3);
  // A spec that holds with a wide margin over the whole output range:
  // the screen certifies every piece, the full tier must still propagate.
  Tensor Normal({1, 10});
  Normal[0] = 1.0;
  const OutputSpec Spec = OutputSpec::halfspace(Normal, 1e6);
  GenProveConfig Config;
  Config.FastScreen = Screen;
  const GenProve Analyzer(Config);
  for (auto _ : State) {
    const AnalysisResult Result =
        Analyzer.analyzeSegment(Net.view(), Shape({1, 8}), Start, End, Spec);
    benchmark::DoNotOptimize(Result.Bounds.Lower);
  }
}
BENCHMARK(BM_TwoTier)->ArgName("screen")->Arg(0)->Arg(1);

void BM_RelaxHeuristic(benchmark::State &State) {
  const int64_t NumPieces = State.range(0);
  Rng R(5);
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<Region> Chain;
    Tensor Prev = Tensor::randn({1, 32}, R);
    for (int64_t I = 0; I < NumPieces; ++I) {
      Tensor Next = Prev.clone();
      for (int64_t J = 0; J < 32; ++J)
        Next[J] += R.normal(0.0, 0.05);
      const double T0 = static_cast<double>(I) / NumPieces;
      const double T1 = static_cast<double>(I + 1) / NumPieces;
      Chain.push_back(makeSegmentRegion(Prev, Next, T1 - T0, T0, T1));
      Prev = Next;
    }
    State.ResumeTiming();
    RelaxConfig Config;
    Config.RelaxPercent = 0.5;
    Config.ClusterK = 50.0;
    Config.NodeThreshold = 100;
    relaxRegions(Chain, Config);
    benchmark::DoNotOptimize(Chain.size());
  }
}
BENCHMARK(BM_RelaxHeuristic)->Arg(1000)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
