//===- bench/table1_nontrivial.cpp - Table 1 reproduction -------*- C++ -*-===//
//
// Table 1: "% of samples with non-trivial verified bounds" — deterministic
// vs probabilistic analysis, exact vs relaxed, on CelebA*/Zappos50k* with
// ConvSmall and ConvMed. Non-trivial means strictly tighter than [0, 1].
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;

  std::printf("Table 1: %% of samples with non-trivial verified bounds\n");
  std::printf("(exact vs relaxed, deterministic vs probabilistic; |P| = %lld "
              "pairs per cell, scaled from the paper's 100)\n\n",
              static_cast<long long>(Env.config().PairsPerCell));

  TablePrinter Table({"Dataset", "Network", "BASELINE (det)",
                      "GenProve^0 (prob)", "GenProveDet^p (det)",
                      "GenProve^p (prob)"});

  // Evaluate every missing cell of the table concurrently before the
  // sequential cache-hit loop below renders it.
  std::vector<BenchEnv::CellRequest> Wanted;
  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes})
    for (const char *Net : {"ConvSmall", "ConvMed"})
      for (Method M : {Method::Baseline, Method::GenProveExact,
                       Method::GenProveDet, Method::GenProveRelax})
        Wanted.push_back({Data, Net, M});
  Env.prefetchCells(Wanted);

  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes}) {
    for (const char *Net : {"ConvSmall", "ConvMed"}) {
      const GridCell &Baseline = Env.cell(Data, Net, Method::Baseline);
      const GridCell &Exact = Env.cell(Data, Net, Method::GenProveExact);
      const GridCell &Det = Env.cell(Data, Net, Method::GenProveDet);
      const GridCell &Relax = Env.cell(Data, Net, Method::GenProveRelax);
      Table.addRow({datasetDisplayName(Data), Net,
                    formatPercent(Baseline.FractionNonTrivial),
                    formatPercent(Exact.FractionNonTrivial),
                    formatPercent(Det.FractionNonTrivial),
                    formatPercent(Relax.FractionNonTrivial)});
    }
  }
  Table.print();
  std::printf("\nPaper shape: probabilistic columns dominate deterministic "
              "ones; the relaxed probabilistic verifier reaches 100%%.\n");
  return 0;
}
