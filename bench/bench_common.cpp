//===- bench/bench_common.cpp ---------------------------------*- C++ -*-===//

#include "bench/bench_common.h"

#include "src/domains/box_domain.h"
#include "src/domains/hybrid_zonotope.h"
#include "src/domains/prop_cache.h"
#include "src/domains/zonotope.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/parallel/thread_pool.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace genprove {

const char *methodName(Method M) {
  switch (M) {
  case Method::Box:
    return "Box";
  case Method::HybridZono:
    return "HybridZono";
  case Method::Zonotope:
    return "Zonotope";
  case Method::DeepZono:
    return "DeepZono";
  case Method::Baseline:
    return "BASELINE";
  case Method::GenProveDet:
    return "GenProveDet";
  case Method::GenProveExact:
    return "GenProve0";
  case Method::GenProveRelax:
    return "GenProveRelax";
  case Method::Sampling:
    return "Sampling";
  default:
    return "?";
  }
}

double toScaledGb(size_t Bytes, size_t BudgetBytes) {
  if (BudgetBytes == 0)
    return static_cast<double>(Bytes) / (1024.0 * 1024.0 * 1024.0);
  return 24.0 * static_cast<double>(Bytes) / static_cast<double>(BudgetBytes);
}

BenchEnv::BenchEnv(BenchConfig InitConfig) : Config(std::move(InitConfig)) {
  // The bench harness always records engine metrics; they feed the run
  // report. Tracing stays off unless a binary opts in.
  setMetricsEnabled(true);
  // The propagation cache is process-wide; its hit/miss/eviction counters
  // land in the run report through the metrics snapshot below.
  PropagationCache::global().configure(Config.CacheBudgetBytes);
  std::error_code Ec;
  std::filesystem::create_directories(Config.ResultsDir, Ec);
  loadCache();
}

BenchEnv::~BenchEnv() {
  saveCache();
  writeRunReport();
}

std::string BenchEnv::configFingerprint() const {
  // Every knob that changes cell values must be part of the hash;
  // ResultsDir only changes where they are stored.
  std::ostringstream Knobs;
  Knobs << Config.PairsPerCell << '|' << Config.ZonoPairsPerCell << '|'
        << Config.SamplesPerPair << '|' << Config.SamplingAlpha << '|'
        << Config.RelaxPercent << '|' << Config.ClusterK << '|'
        << Config.NodeThreshold << '|' << Config.MemoryBudgetBytes << '|'
        << Config.Resilient << '|' << Config.DeadlineSeconds << '|'
        << Config.Shards << '|' << Config.BatchWidth << '|'
        << Config.CacheBudgetBytes;
  const std::string Text = Knobs.str();
  uint64_t Hash = 1469598103934665603ull; // FNV-1a 64
  for (unsigned char C : Text) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  }
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Hash));
  return Buf;
}

std::string BenchEnv::cacheKey(DatasetId Data, const std::string &Network,
                               Method Which) const {
  std::ostringstream Key;
  Key << datasetDisplayName(Data) << "|" << Network << "|"
      << methodName(Which);
  return Key.str();
}

Sequential &BenchEnv::targetNetwork(DatasetId Data,
                                    const std::string &Network) {
  return Data == DatasetId::Faces ? Zoo.facesDetector(Network)
                                  : Zoo.shoesClassifier(Network);
}

const GridCell &BenchEnv::cell(DatasetId Data, const std::string &Network,
                               Method Which) {
  const std::string Key = cacheKey(Data, Network, Which);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  std::fprintf(stderr, "[bench] computing cell %s ...\n", Key.c_str());
  GridCell Cell = computeCell(Data, Network, Which);
  Dirty = true;
  FreshKeys.insert(Key);
  auto [Pos, Inserted] = Cache.emplace(Key, std::move(Cell));
  saveCache();
  (void)Inserted;
  return Pos->second;
}

void BenchEnv::prefetchCells(const std::vector<CellRequest> &Requests) {
  // Deduplicate down to the cache misses, keeping request order so the
  // fan-out (and the stderr progress lines) follow the table layout.
  std::vector<CellRequest> Missing;
  std::set<std::string> Seen;
  for (const CellRequest &Req : Requests) {
    const std::string Key = cacheKey(Req.Dataset, Req.Network, Req.Which);
    if (Cache.count(Key) || !Seen.insert(Key).second)
      continue;
    Missing.push_back(Req);
  }
  if (Missing.empty())
    return;

  // Warm every lazily-trained model up front, single-threaded: training
  // and disk-cache loads mutate the zoo's maps. After this, computeCell
  // only looks models up (plus the mutex-guarded encoder calls).
  for (const CellRequest &Req : Missing) {
    Zoo.train(Req.Dataset);
    Zoo.vae(Req.Dataset);
    targetNetwork(Req.Dataset, Req.Network);
  }

  // Independent cells fan out one per chunk; each cell is a pure
  // function of (coordinate, BenchConfig), so the resulting rows are
  // identical to sequential evaluation in any thread count.
  std::vector<GridCell> Results(Missing.size());
  parallelFor(static_cast<int64_t>(Missing.size()), 1,
              [&](int64_t Begin, int64_t End) {
                for (int64_t I = Begin; I < End; ++I) {
                  const CellRequest &Req = Missing[static_cast<size_t>(I)];
                  std::fprintf(stderr, "[bench] computing cell %s ...\n",
                               cacheKey(Req.Dataset, Req.Network, Req.Which)
                                   .c_str());
                  Results[static_cast<size_t>(I)] =
                      computeCell(Req.Dataset, Req.Network, Req.Which);
                }
              });

  for (size_t I = 0; I < Missing.size(); ++I) {
    const CellRequest &Req = Missing[I];
    const std::string Key = cacheKey(Req.Dataset, Req.Network, Req.Which);
    Cache.emplace(Key, std::move(Results[I]));
    FreshKeys.insert(Key);
    Dirty = true;
  }
  saveCache();
}

GridCell BenchEnv::computeCell(DatasetId Data, const std::string &Network,
                               Method Which) {
  const Dataset &Set = Zoo.train(Data);
  Vae &Model = Zoo.vae(Data);
  Sequential &Target = targetNetwork(Data, Network);
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const Shape LatentShape({1, Model.latentDim()});
  const std::vector<const Layer *> Pipeline =
      concatViews(Model.decoder().view(), Target.view());
  const int64_t NumOutputs = Target.outputShape(ImgShape).dim(1);

  GridCell Cell;
  Cell.DatasetName = datasetDisplayName(Data);
  Cell.NetworkName = Network;
  Cell.Which = Which;
  Cell.Neurons = Target.countNeurons(ImgShape);

  const bool IsConvex = Which == Method::Box || Which == Method::HybridZono ||
                        Which == Method::Zonotope ||
                        Which == Method::DeepZono;
  const int64_t NumPairs =
      IsConvex ? Config.ZonoPairsPerCell : Config.PairsPerCell;
  Cell.NumPairs = NumPairs;

  // The paper evaluates every architecture on the same |P| pairs; seed by
  // dataset only so ConvSmall/Med/Large see identical segments.
  Rng PairRng(0xabcdef01u + static_cast<uint64_t>(Data) * 7);
  const std::vector<SpecPair> Pairs =
      Data == DatasetId::Faces
          ? sameAttributePairs(Set, NumPairs, PairRng)
          : sameClassPairs(Set, NumPairs, PairRng);

  // GenProve configuration shared by the GenProve-family methods.
  GenProveConfig GpConfig;
  GpConfig.ClusterK = Config.ClusterK;
  GpConfig.NodeThreshold = Config.NodeThreshold;
  GpConfig.MemoryBudgetBytes = Config.MemoryBudgetBytes;
  GpConfig.Resilience.Enabled = Config.Resilient;
  GpConfig.Resilience.DeadlineSeconds =
      Config.Resilient ? Config.DeadlineSeconds : 0.0;
  GpConfig.InputSplits = std::max<int64_t>(Config.Shards, 1);
  switch (Which) {
  case Method::Baseline:
    GpConfig.Mode = AnalysisMode::Deterministic;
    GpConfig.RelaxPercent = 0.0;
    break;
  case Method::GenProveDet:
    GpConfig.Mode = AnalysisMode::Deterministic;
    GpConfig.RelaxPercent = Config.RelaxPercent;
    GpConfig.Schedule = RefinementSchedule::A;
    break;
  case Method::GenProveExact:
    GpConfig.RelaxPercent = 0.0;
    break;
  case Method::GenProveRelax:
    GpConfig.RelaxPercent = Config.RelaxPercent;
    GpConfig.Schedule = RefinementSchedule::A;
    break;
  default:
    break;
  }
  const GenProve Analyzer(GpConfig);

  double SumWidth = 0.0, SumLower = 0.0, SumUpper = 0.0, SumSeconds = 0.0;
  int64_t NumBounds = 0, NumNonTrivial = 0, NumOom = 0;
  int64_t MaxRegions = 0, MaxNodes = 0, MaxRetries = 0;
  int64_t NumDegraded = 0;
  size_t PeakBytes = 0;
  Rng SampleRng(0x5eed5eedu);

  // Phase 1: encode every pair's endpoints (the encoder caches per-layer
  // activations, so concurrent cells must take turns) and materialize its
  // specs: class argmax, or one sign spec per attribute. Everything after
  // the encodes reads shared models through const views only.
  std::vector<std::pair<Tensor, Tensor>> Latents;
  std::vector<std::vector<OutputSpec>> PairSpecs;
  for (const SpecPair &Pair : Pairs) {
    {
      std::lock_guard<std::mutex> Lock(EncodeMu);
      Latents.emplace_back(Model.encode(Set.image(Pair.First)),
                           Model.encode(Set.image(Pair.Second)));
    }
    std::vector<OutputSpec> Specs;
    if (Data == DatasetId::Faces) {
      for (int64_t J = 0; J < NumOutputs; ++J)
        Specs.push_back(OutputSpec::attributeSign(
            J, Set.Attributes.at(Pair.First, J) > 0.5, NumOutputs));
    } else {
      Specs.push_back(OutputSpec::argmaxWins(
          Set.Labels[static_cast<size_t>(Pair.First)], NumOutputs));
    }
    PairSpecs.push_back(std::move(Specs));
  }

  const auto Accumulate = [&](const std::vector<ProbBounds> &AllBounds,
                              bool PairOom) {
    if (PairOom)
      ++NumOom;
    for (const ProbBounds &Bounds : AllBounds) {
      SumWidth += Bounds.width();
      SumLower += Bounds.Lower;
      SumUpper += Bounds.Upper;
      if (Bounds.nonTrivial())
        ++NumNonTrivial;
      ++NumBounds;
    }
  };

  // Phase 2: certify. With BatchWidth > 1 the convex and GenProve-family
  // methods propagate chunks of pairs as one stacked abstract state
  // (bit-identical per-pair bounds; docs/PERFORMANCE.md), and the chunk's
  // wall clock is charged once — MeanSeconds then shows the amortization.
  const size_t BatchWidth =
      static_cast<size_t>(std::max<int64_t>(Config.BatchWidth, 1));

  if (IsConvex) {
    for (size_t Base = 0; Base < Pairs.size(); Base += BatchWidth) {
      const size_t ChunkEnd = std::min(Pairs.size(), Base + BatchWidth);
      Timer ChunkTimer;
      if (ChunkEnd - Base == 1) {
        const auto &[E1, E2] = Latents[Base];
        const std::vector<OutputSpec> &Specs = PairSpecs[Base];
        DeviceMemoryModel Memory(Config.MemoryBudgetBytes);
        std::vector<ConvexResult> Results;
        switch (Which) {
        case Method::Box:
          Results =
              analyzeBoxMulti(Pipeline, LatentShape, E1, E2, Specs, Memory);
          break;
        case Method::HybridZono:
          Results = analyzeHybridZonotopeMulti(Pipeline, LatentShape, E1, E2,
                                               Specs, Memory);
          break;
        case Method::Zonotope:
          Results = analyzeZonotopeMulti(Pipeline, LatentShape, E1, E2,
                                         Specs, ZonotopeKind::Zonotope,
                                         Memory);
          break;
        default:
          Results = analyzeZonotopeMulti(Pipeline, LatentShape, E1, E2,
                                         Specs, ZonotopeKind::DeepZono,
                                         Memory);
          break;
        }
        std::vector<ProbBounds> AllBounds;
        bool PairOom = false;
        for (const ConvexResult &Result : Results) {
          AllBounds.push_back(Result.Bounds);
          PairOom |= Result.Bounds.OutOfMemory;
          PeakBytes = std::max(PeakBytes, Result.PeakBytes);
        }
        Accumulate(AllBounds, PairOom);
      } else {
        // Each pair keeps its own specs; the batch API evaluates one
        // shared spec list against every segment, so the chunk's lists
        // are concatenated and each pair reads back its own slice
        // (bounds are per-(state, spec), so the extra evaluations do not
        // perturb anything).
        std::vector<std::pair<Tensor, Tensor>> Segments;
        std::vector<OutputSpec> Union;
        std::vector<size_t> Offset;
        for (size_t I = Base; I < ChunkEnd; ++I) {
          Segments.push_back(Latents[I]);
          Offset.push_back(Union.size());
          Union.insert(Union.end(), PairSpecs[I].begin(),
                       PairSpecs[I].end());
        }
        DeviceMemoryModel Memory(Config.MemoryBudgetBytes);
        std::vector<std::vector<ConvexResult>> Batch;
        switch (Which) {
        case Method::Box:
          Batch = analyzeBoxBatch(Pipeline, LatentShape, Segments, Union,
                                  Memory);
          break;
        case Method::HybridZono:
          Batch = analyzeHybridZonotopeBatch(Pipeline, LatentShape, Segments,
                                             Union, Memory);
          break;
        case Method::Zonotope:
          Batch = analyzeZonotopeBatch(Pipeline, LatentShape, Segments,
                                       Union, ZonotopeKind::Zonotope,
                                       Memory);
          break;
        default:
          Batch = analyzeZonotopeBatch(Pipeline, LatentShape, Segments,
                                       Union, ZonotopeKind::DeepZono,
                                       Memory);
          break;
        }
        for (size_t I = Base; I < ChunkEnd; ++I) {
          const size_t Local = I - Base;
          std::vector<ProbBounds> AllBounds;
          bool PairOom = false;
          for (size_t J = 0; J < PairSpecs[I].size(); ++J) {
            const ConvexResult &Result = Batch[Local][Offset[Local] + J];
            AllBounds.push_back(Result.Bounds);
            PairOom |= Result.Bounds.OutOfMemory;
            PeakBytes = std::max(PeakBytes, Result.PeakBytes);
          }
          Accumulate(AllBounds, PairOom);
        }
      }
      SumSeconds += ChunkTimer.seconds();
    }
  } else if (Which == Method::Sampling) {
    for (size_t PairIdx = 0; PairIdx < Pairs.size(); ++PairIdx) {
      const Tensor &E1 = Latents[PairIdx].first;
      const Tensor &E2 = Latents[PairIdx].second;
      const std::vector<OutputSpec> &Specs = PairSpecs[PairIdx];
      Timer PairTimer;
      std::vector<ProbBounds> AllBounds;
      // Sample once per pair and score every spec on the shared outputs.
      const int64_t Latent = Model.latentDim();
      std::vector<int64_t> Satisfied(Specs.size(), 0);
      int64_t Done = 0;
      while (Done < Config.SamplesPerPair) {
        const int64_t B =
            std::min<int64_t>(256, Config.SamplesPerPair - Done);
        Tensor Points({B, Latent});
        for (int64_t I = 0; I < B; ++I) {
          const double T = SampleRng.uniform();
          for (int64_t J = 0; J < Latent; ++J)
            Points.at(I, J) = E1[J] + T * (E2[J] - E1[J]);
        }
        const Tensor Out =
            forwardConcretePoints(Pipeline, LatentShape, Points);
        for (int64_t I = 0; I < B; ++I) {
          Tensor Row({1, Out.dim(1)});
          std::copy(Out.data() + I * Out.dim(1),
                    Out.data() + (I + 1) * Out.dim(1), Row.data());
          for (size_t SpecIdx = 0; SpecIdx < Specs.size(); ++SpecIdx)
            if (Specs[SpecIdx].satisfied(Row))
              ++Satisfied[SpecIdx];
        }
        Done += B;
      }
      for (size_t SpecIdx = 0; SpecIdx < Specs.size(); ++SpecIdx) {
        const auto [Lo, Hi] = clopperPearson(
            static_cast<size_t>(Satisfied[SpecIdx]),
            static_cast<size_t>(Config.SamplesPerPair), Config.SamplingAlpha);
        AllBounds.push_back({Lo, Hi, false});
      }
      // Sampling keeps only one batch of activations resident.
      PeakBytes = std::max(
          PeakBytes, static_cast<size_t>(256 * 4096 * sizeof(double)));
      SumSeconds += PairTimer.seconds();
      Accumulate(AllBounds, /*PairOom=*/false);
    }
  } else {
    // The GenProve-family methods. Chunks of two or more pairs go through
    // propagateSegmentsBatch; non-batchable configurations (refinement
    // schedule, resilience, splits) transparently run sequentially inside
    // it, so every per-pair bound matches the width-1 run exactly.
    for (size_t Base = 0; Base < Pairs.size(); Base += BatchWidth) {
      const size_t ChunkEnd = std::min(Pairs.size(), Base + BatchWidth);
      Timer ChunkTimer;
      std::vector<PropagatedState> States;
      if (ChunkEnd - Base == 1) {
        States.push_back(Analyzer.propagateSegment(Pipeline, LatentShape,
                                                   Latents[Base].first,
                                                   Latents[Base].second));
      } else {
        const std::vector<std::pair<Tensor, Tensor>> Segments(
            Latents.begin() + static_cast<int64_t>(Base),
            Latents.begin() + static_cast<int64_t>(ChunkEnd));
        States = Analyzer.propagateSegmentsBatch(Pipeline, LatentShape,
                                                 Segments);
      }
      for (size_t I = Base; I < ChunkEnd; ++I) {
        const PropagatedState &State = States[I - Base];
        PeakBytes = std::max(PeakBytes, State.PeakBytes);
        MaxRegions = std::max(MaxRegions, State.Stats.MaxRegions);
        MaxNodes = std::max(MaxNodes, State.Stats.MaxNodes);
        MaxRetries = std::max(MaxRetries, State.Retries);
        if (State.Degraded)
          ++NumDegraded;
        Cell.MaxRung = std::max(
            Cell.MaxRung, static_cast<int64_t>(State.Stats.Rung));
        Cell.Rollbacks += State.Stats.Rollbacks;
        Cell.FallbackBoxLayers += State.Stats.FallbackBoxLayers;
        if (State.Stats.DeadlineHit)
          ++Cell.DeadlineHits;
        std::vector<ProbBounds> AllBounds;
        for (const OutputSpec &Spec : PairSpecs[I])
          AllBounds.push_back(Analyzer.boundsFor(State, Spec));
        Accumulate(AllBounds, State.OutOfMemory);
      }
      SumSeconds += ChunkTimer.seconds();
    }
  }

  if (NumBounds > 0) {
    Cell.MeanWidth = SumWidth / static_cast<double>(NumBounds);
    Cell.MeanLower = SumLower / static_cast<double>(NumBounds);
    Cell.MeanUpper = SumUpper / static_cast<double>(NumBounds);
    Cell.FractionNonTrivial =
        static_cast<double>(NumNonTrivial) / static_cast<double>(NumBounds);
  }
  if (!Pairs.empty()) {
    Cell.FractionOom =
        static_cast<double>(NumOom) / static_cast<double>(Pairs.size());
    Cell.FractionDegraded =
        static_cast<double>(NumDegraded) / static_cast<double>(Pairs.size());
    Cell.MeanSeconds = SumSeconds / static_cast<double>(Pairs.size());
  }
  Cell.NumBounds = NumBounds;
  Cell.PeakGb = toScaledGb(PeakBytes, Config.MemoryBudgetBytes);
  Cell.MaxRegions = MaxRegions;
  Cell.MaxNodes = MaxNodes;
  Cell.Retries = MaxRetries;
  return Cell;
}

namespace {
const char *GridHeader =
    "key,dataset,network,method,neurons,pairs,bounds,width,lower,upper,"
    "nontrivial,oom,seconds,peakgb,maxregions,maxnodes,retries,"
    "degraded,maxrung,rollbacks,fallbackbox,deadlinehits";
const char *ConfigLinePrefix = "#config ";
} // namespace

void BenchEnv::saveCache() {
  if (!Dirty)
    return;
  std::ofstream Out(Config.ResultsDir + "/grid.csv");
  if (!Out)
    return;
  Out << ConfigLinePrefix << configFingerprint() << '\n';
  Out << GridHeader << '\n';
  for (const auto &[Key, Cell] : Cache) {
    Out << Key << ',' << Cell.DatasetName << ',' << Cell.NetworkName << ','
        << methodName(Cell.Which) << ',' << Cell.Neurons << ','
        << Cell.NumPairs << ',' << Cell.NumBounds << ',' << Cell.MeanWidth
        << ',' << Cell.MeanLower << ',' << Cell.MeanUpper << ','
        << Cell.FractionNonTrivial << ',' << Cell.FractionOom << ','
        << Cell.MeanSeconds << ',' << Cell.PeakGb << ',' << Cell.MaxRegions
        << ',' << Cell.MaxNodes << ',' << Cell.Retries << ','
        << Cell.FractionDegraded << ',' << Cell.MaxRung << ','
        << Cell.Rollbacks << ',' << Cell.FallbackBoxLayers << ','
        << Cell.DeadlineHits << '\n';
  }
  Dirty = false;
}

void BenchEnv::loadCache() {
  std::ifstream In(Config.ResultsDir + "/grid.csv");
  if (!In)
    return;
  std::string Line;
  // The first line pins the BenchConfig the cells were computed under; a
  // mismatch (changed knobs, or a pre-fingerprint cache) discards the
  // whole file rather than serving stale cells.
  std::getline(In, Line);
  if (Line != ConfigLinePrefix + configFingerprint()) {
    std::fprintf(stderr,
                 "[bench] results/grid.csv was computed under a different "
                 "BenchConfig; recomputing\n");
    return;
  }
  std::getline(In, Line); // column header
  if (Line != GridHeader)
    return;
  while (std::getline(In, Line)) {
    std::istringstream Row(Line);
    std::string Field;
    std::vector<std::string> Fields;
    while (std::getline(Row, Field, '|')) {
      // The key itself contains '|'; re-split carefully below.
      Fields.push_back(Field);
    }
    // Key format: dataset|network|method, followed by comma fields. Re-parse.
    const size_t FirstComma = Line.find(',', Line.rfind('|'));
    if (FirstComma == std::string::npos)
      continue;
    const std::string Key = Line.substr(0, FirstComma);
    std::istringstream Rest(Line.substr(FirstComma + 1));
    GridCell Cell;
    std::string MethodStr;
    auto Next = [&Rest]() {
      std::string F;
      std::getline(Rest, F, ',');
      return F;
    };
    Cell.DatasetName = Next();
    Cell.NetworkName = Next();
    MethodStr = Next();
    Cell.Neurons = std::stoll(Next());
    Cell.NumPairs = std::stoll(Next());
    Cell.NumBounds = std::stoll(Next());
    Cell.MeanWidth = std::stod(Next());
    Cell.MeanLower = std::stod(Next());
    Cell.MeanUpper = std::stod(Next());
    Cell.FractionNonTrivial = std::stod(Next());
    Cell.FractionOom = std::stod(Next());
    Cell.MeanSeconds = std::stod(Next());
    Cell.PeakGb = std::stod(Next());
    Cell.MaxRegions = std::stoll(Next());
    Cell.MaxNodes = std::stoll(Next());
    Cell.Retries = std::stoll(Next());
    Cell.FractionDegraded = std::stod(Next());
    Cell.MaxRung = std::stoll(Next());
    Cell.Rollbacks = std::stoll(Next());
    Cell.FallbackBoxLayers = std::stoll(Next());
    Cell.DeadlineHits = std::stoll(Next());
    for (int M = 0; M < static_cast<int>(Method::NumMethods); ++M)
      if (MethodStr == methodName(static_cast<Method>(M)))
        Cell.Which = static_cast<Method>(M);
    Cache[Key] = Cell;
  }
}

void BenchEnv::writeRunReport() {
  std::ofstream Out(Config.ResultsDir + "/run_report.json");
  if (!Out)
    return;
  JsonWriter W;
  W.beginObject();

  W.key("config");
  W.beginObject();
  W.key("fingerprint").value(configFingerprint());
  W.key("pairs_per_cell").value(Config.PairsPerCell);
  W.key("zono_pairs_per_cell").value(Config.ZonoPairsPerCell);
  W.key("samples_per_pair").value(Config.SamplesPerPair);
  W.key("sampling_alpha").value(Config.SamplingAlpha);
  W.key("relax_percent").value(Config.RelaxPercent);
  W.key("cluster_k").value(Config.ClusterK);
  W.key("node_threshold").value(Config.NodeThreshold);
  W.key("memory_budget_bytes")
      .value(static_cast<int64_t>(Config.MemoryBudgetBytes));
  W.key("resilient").value(Config.Resilient);
  W.key("deadline_seconds").value(Config.DeadlineSeconds);
  W.key("shards").value(Config.Shards);
  W.key("batch_width").value(Config.BatchWidth);
  W.key("cache_budget_bytes")
      .value(static_cast<int64_t>(Config.CacheBudgetBytes));
  W.endObject();

  W.key("cells");
  W.beginArray();
  for (const auto &[Key, Cell] : Cache) {
    W.beginObject();
    W.key("key").value(Key);
    W.key("dataset").value(Cell.DatasetName);
    W.key("network").value(Cell.NetworkName);
    W.key("method").value(std::string(methodName(Cell.Which)));
    W.key("fresh").value(FreshKeys.count(Key) > 0);
    W.key("neurons").value(Cell.Neurons);
    W.key("pairs").value(Cell.NumPairs);
    W.key("bounds").value(Cell.NumBounds);
    W.key("mean_width").value(Cell.MeanWidth);
    W.key("mean_lower").value(Cell.MeanLower);
    W.key("mean_upper").value(Cell.MeanUpper);
    W.key("fraction_nontrivial").value(Cell.FractionNonTrivial);
    W.key("fraction_oom").value(Cell.FractionOom);
    W.key("mean_seconds").value(Cell.MeanSeconds);
    W.key("peak_gb").value(Cell.PeakGb);
    W.key("max_regions").value(Cell.MaxRegions);
    W.key("max_nodes").value(Cell.MaxNodes);
    W.key("retries").value(Cell.Retries);
    // Degradation events, so trajectory plots can separate exact /
    // relaxed / degraded cells (see docs/ROBUSTNESS.md).
    W.key("mode").value(std::string(Cell.modeName()));
    W.key("fraction_degraded").value(Cell.FractionDegraded);
    W.key("max_rung")
        .value(std::string(degradeRungName(
            static_cast<DegradeRung>(Cell.MaxRung))));
    W.key("rollbacks").value(Cell.Rollbacks);
    W.key("fallback_box_layers").value(Cell.FallbackBoxLayers);
    W.key("deadline_hits").value(Cell.DeadlineHits);
    W.endObject();
  }
  W.endArray();

  // The process-global metrics snapshot (propagate.splits, refine.retries,
  // propagate.layer_seconds, ...) accumulated while computing fresh cells.
  W.key("metrics").raw(MetricsRegistry::global().toJson());

  // Latency percentiles extracted from every histogram's merged buckets
  // (log-2 buckets, so estimates are within 2x of the exact quantile;
  // see docs/OBSERVABILITY.md). propagate.layer_seconds is the headline:
  // p50/p90/p99 per-layer propagation latency.
  W.key("percentiles");
  W.beginObject();
  for (const Histogram *H : MetricsRegistry::global().histogramList()) {
    W.key(H->name());
    W.beginObject();
    W.key("p50").value(histogramQuantile(*H, 0.50));
    W.key("p90").value(histogramQuantile(*H, 0.90));
    W.key("p99").value(histogramQuantile(*H, 0.99));
    W.endObject();
  }
  W.endObject();

  W.endObject();
  Out << W.str() << '\n';
}

} // namespace genprove
