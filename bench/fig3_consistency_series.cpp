//===- bench/fig3_consistency_series.cpp - Figure 3 series ------*- C++ -*-===//
//
// Figure 3 shows interpolation strips for matched-attribute pairs. We
// print the quantitative series behind the figure: the attribute-detector
// verdicts at sampled interpolation points, plus the verified consistency
// bounds for the same segments — the numbers the images illustrate.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Detector = Zoo.facesDetector("ConvMed");
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const int64_t NumAttrs = Detector.outputShape(ImgShape).dim(1);
  const Shape LatentShape({1, Model.latentDim()});
  const auto Pipeline = concatViews(Model.decoder().view(), Detector.view());

  std::printf("Figure 3: generative interpolation consistency series "
              "(matched-attribute pair, ConvMed detector)\n\n");

  Rng R(707);
  const auto Pairs = sameAttributePairs(Set, 1, R);
  const SpecPair Pair = Pairs.front();
  const Tensor E1 = Model.encode(Set.image(Pair.First));
  const Tensor E2 = Model.encode(Set.image(Pair.Second));

  // Sampled verdict series along the interpolation.
  TablePrinter Series({"alpha", "attributes matching ground truth"});
  for (int Step = 0; Step <= 10; ++Step) {
    const double Alpha = Step / 10.0;
    Tensor E({1, Model.latentDim()});
    for (int64_t J = 0; J < E.numel(); ++J)
      E[J] = E1[J] + Alpha * (E2[J] - E1[J]);
    const Tensor Logits = Detector.predict(Model.decode(E));
    int64_t Matching = 0;
    for (int64_t J = 0; J < NumAttrs; ++J) {
      const bool Predicted = Logits[J] > 0.0;
      const bool Truth = Set.Attributes.at(Pair.First, J) > 0.5;
      Matching += Predicted == Truth;
    }
    char A[16], M[32];
    std::snprintf(A, sizeof(A), "%.1f", Alpha);
    std::snprintf(M, sizeof(M), "%lld / %lld",
                  static_cast<long long>(Matching),
                  static_cast<long long>(NumAttrs));
    Series.addRow({A, M});
  }
  Series.print();

  // The verified per-attribute consistency bounds for the same segment.
  GenProveConfig Config;
  Config.RelaxPercent = Env.config().RelaxPercent;
  Config.ClusterK = Env.config().ClusterK;
  Config.NodeThreshold = Env.config().NodeThreshold;
  Config.MemoryBudgetBytes = Env.config().MemoryBudgetBytes;
  Config.Schedule = RefinementSchedule::A;
  const GenProve Analyzer(Config);
  const PropagatedState State =
      Analyzer.propagateSegment(Pipeline, LatentShape, E1, E2);

  std::printf("\nVerified consistency bounds per attribute:\n");
  TablePrinter BoundsTable({"Attribute", "l", "u"});
  for (int64_t J = 0; J < NumAttrs; ++J) {
    const OutputSpec Spec = OutputSpec::attributeSign(
        J, Set.Attributes.at(Pair.First, J) > 0.5, NumAttrs);
    const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
    BoundsTable.addRow({Set.AttributeNames[static_cast<size_t>(J)],
                        formatBound(Bounds.Lower),
                        formatBound(Bounds.Upper)});
  }
  BoundsTable.print();
  return 0;
}
