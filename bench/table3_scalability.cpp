//===- bench/table3_scalability.cpp - Table 3 reproduction ------*- C++ -*-===//
//
// Table 3: peak simulated device memory / OOM fraction / runtime of
// GenProve^0 vs GenProve^0.02_100 across the three network sizes.
// With --sweep, also runs the relaxation-parameter ablation (p and k)
// called out in DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>
#include <cstring>

using namespace genprove;

namespace {

void printMainTable(BenchEnv &Env) {
  std::printf("Table 3: memory usage and runtime, with and without "
              "relaxation\n");
  std::printf("(simulated device budget: %s standing in for the paper's "
              "24 GB)\n\n",
              formatBytes(Env.config().MemoryBudgetBytes).c_str());

  TablePrinter Table({"Dataset", "Domain", "peak mem (scaled GB) S/M/L",
                      "OOM% S/M/L", "runtime (s) S/M/L"});
  std::vector<BenchEnv::CellRequest> Wanted;
  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes})
    for (Method Which : {Method::GenProveExact, Method::GenProveRelax})
      for (const char *Net : {"ConvSmall", "ConvMed", "ConvLarge"})
        Wanted.push_back({Data, Net, Which});
  Env.prefetchCells(Wanted);
  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes}) {
    for (Method Which : {Method::GenProveExact, Method::GenProveRelax}) {
      std::string Mem, Oom, Time;
      for (const char *Net : {"ConvSmall", "ConvMed", "ConvLarge"}) {
        const GridCell &Cell = Env.cell(Data, Net, Which);
        if (!Mem.empty()) {
          Mem += " / ";
          Oom += " / ";
          Time += " / ";
        }
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%.1f", Cell.PeakGb);
        Mem += Buf;
        Oom += formatPercent(Cell.FractionOom);
        Time += formatSeconds(Cell.MeanSeconds);
      }
      Table.addRow({datasetDisplayName(Data),
                    Which == Method::GenProveExact ? "GenProve^0"
                                                   : "GenProve^0.02_100",
                    Mem, Oom, Time});
    }
  }
  Table.print();
  std::printf("\nPaper shape: exact analysis is the memory-hungry one; at "
              "this (trained, 16x16) scale it fits the 1:100 budget, so "
              "the OOM contrast is demonstrated under a reduced budget "
              "below. The always-OOM baselines are the zonotopes "
              "(Table 8).\n");

  // Reduced-budget demonstration: a tenth of the budget (2.4 scaled GB).
  std::printf("\nReduced budget (%s): exact vs relaxed+schedule on "
              "ConvMed\n\n",
              formatBytes(Env.config().MemoryBudgetBytes / 10).c_str());
  TablePrinter Small({"Dataset", "Domain", "OOM", "width", "retries",
                      "final p"});
  ModelZoo &Zoo = Env.zoo();
  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes}) {
    const Dataset &Set = Zoo.train(Data);
    Vae &Model = Zoo.vae(Data);
    Sequential &Target = Env.targetNetwork(Data, "ConvMed");
    const auto Pipeline =
        concatViews(Model.decoder().view(), Target.view());
    const Shape LatentShape({1, Model.latentDim()});
    const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
    const int64_t NumOutputs = Target.outputShape(ImgShape).dim(1);
    Rng PairRng(0xabcdef01u + static_cast<uint64_t>(Data) * 7);
    const auto Pairs = Data == DatasetId::Faces
                           ? sameAttributePairs(Set, 1, PairRng)
                           : sameClassPairs(Set, 1, PairRng);
    const Tensor E1 = Model.encode(Set.image(Pairs[0].First));
    const Tensor E2 = Model.encode(Set.image(Pairs[0].Second));
    const OutputSpec Spec =
        Data == DatasetId::Faces
            ? OutputSpec::attributeSign(
                  0, Set.Attributes.at(Pairs[0].First, 0) > 0.5, NumOutputs)
            : OutputSpec::argmaxWins(
                  Set.Labels[static_cast<size_t>(Pairs[0].First)],
                  NumOutputs);
    for (bool Relaxed : {false, true}) {
      GenProveConfig Config;
      Config.RelaxPercent = Relaxed ? Env.config().RelaxPercent : 0.0;
      Config.ClusterK = Env.config().ClusterK;
      Config.NodeThreshold = Env.config().NodeThreshold;
      Config.MemoryBudgetBytes = Env.config().MemoryBudgetBytes / 10;
      if (Relaxed)
        Config.Schedule = RefinementSchedule::A;
      const PropagatedState State =
          GenProve(Config).propagateSegment(Pipeline, LatentShape, E1, E2);
      const ProbBounds Bounds =
          GenProve(Config).boundsFor(State, Spec);
      char Retries[16], FinalP[16];
      std::snprintf(Retries, sizeof(Retries), "%lld",
                    static_cast<long long>(State.Retries));
      std::snprintf(FinalP, sizeof(FinalP), "%.3f",
                    State.UsedRelaxPercent);
      Small.addRow({datasetDisplayName(Data),
                    Relaxed ? "GenProve^0.02_100 + schedule A"
                            : "GenProve^0",
                    State.OutOfMemory ? "yes" : "no",
                    formatBound(Bounds.width()), Retries, FinalP});
    }
  }
  Small.print();
}

void printAblation(BenchEnv &Env) {
  std::printf("\nAblation: relaxation percentage p and cluster parameter k "
              "(CelebA*, ConvMed)\n\n");
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Target = Env.targetNetwork(DatasetId::Faces, "ConvMed");
  const auto Pipeline = concatViews(Model.decoder().view(), Target.view());
  const Shape LatentShape({1, Model.latentDim()});
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const int64_t NumOutputs = Target.outputShape(ImgShape).dim(1);

  Rng PairRng(777);
  const auto Pairs = sameAttributePairs(Set, 1, PairRng);
  const Tensor E1 = Model.encode(Set.image(Pairs[0].First));
  const Tensor E2 = Model.encode(Set.image(Pairs[0].Second));
  const OutputSpec Spec = OutputSpec::attributeSign(
      0, Set.Attributes.at(Pairs[0].First, 0) > 0.5, NumOutputs);

  TablePrinter Table({"p", "k", "width", "OOM", "max nodes", "seconds"});
  for (double P : {0.0, 0.01, 0.02, 0.05, 0.2}) {
    for (double K : {20.0, 100.0}) {
      GenProveConfig Config;
      Config.RelaxPercent = P;
      Config.ClusterK = K;
      Config.NodeThreshold = Env.config().NodeThreshold;
      Config.MemoryBudgetBytes = Env.config().MemoryBudgetBytes;
      const AnalysisResult Result = GenProve(Config).analyzeSegment(
          Pipeline, LatentShape, E1, E2, Spec);
      char Pb[32], Kb[32], Nodes[32];
      std::snprintf(Pb, sizeof(Pb), "%.2f", P);
      std::snprintf(Kb, sizeof(Kb), "%.0f", K);
      std::snprintf(Nodes, sizeof(Nodes), "%lld",
                    static_cast<long long>(Result.MaxNodes));
      Table.addRow({Pb, Kb, formatBound(Result.Bounds.width()),
                    Result.OutOfMemory ? "yes" : "no", Nodes,
                    formatSeconds(Result.Seconds)});
      if (P == 0.0)
        break; // k is irrelevant without relaxation
    }
  }
  Table.print();
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env;
  printMainTable(Env);
  const bool Sweep = Argc > 1 && std::strcmp(Argv[1], "--sweep") == 0;
  if (Sweep)
    printAblation(Env);
  else
    std::printf("\n(run with --sweep for the p/k relaxation ablation)\n");
  return 0;
}
