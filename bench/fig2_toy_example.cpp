//===- bench/fig2_toy_example.cpp - Figure 2 / Appendix A -------*- C++ -*-===//
//
// Prints the paper's worked example end to end: the Figure 2 polygonal
// chain through ReLU#, the relaxation step that produces the weighted box
// with corners (0,2)-(1,4.5), the resulting probabilistic lower bound, and
// the Appendix A one-layer walkthrough.
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/propagate.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

using namespace genprove;

namespace {

void figure2Chain() {
  std::printf("Figure 2: toy inference with overapproximation\n\n");
  const double Pts[5][2] = {
      {1.0, 2.0}, {-1.0, 3.0}, {-1.0, 3.5}, {1.0, 4.5}, {3.5, 2.0}};
  const double Lambda[4] = {0.2, 0.2, 0.2, 0.4};

  std::vector<Region> Chain;
  double T = 0.0;
  for (int I = 0; I < 4; ++I) {
    Tensor A({1, 2}, {Pts[I][0], Pts[I][1]});
    Tensor B({1, 2}, {Pts[I + 1][0], Pts[I + 1][1]});
    Chain.push_back(makeSegmentRegion(A, B, Lambda[I], T, T + Lambda[I]));
    T += Lambda[I];
  }

  Sequential Net;
  Net.add(std::make_unique<ReLU>());
  PropagateConfig Config;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  auto Split = propagateRegions(Net.view(), Shape({1, 2}), std::move(Chain),
                                Config, Memory, Stats);
  std::sort(Split.begin(), Split.end(),
            [](const Region &X, const Region &Y) { return X.T0 < Y.T0; });

  std::printf("after ReLU#: %zu segments (the paper's 6), weights:",
              Split.size());
  for (const auto &Piece : Split)
    std::printf(" %.2f", Piece.Weight);
  std::printf("\n");

  Region Box = boundingBox(Split[0]);
  for (size_t I = 1; I + 1 < Split.size(); ++I)
    Box = mergeBoxes(Box, boundingBox(Split[I]));
  std::printf("Relax: first %zu segments -> box [%.1f, %.1f] x [%.1f, %.1f] "
              "with weight %.2f (paper: (0,2)-(1,4.5), 0.6)\n",
              Split.size() - 1, Box.Center[0] - Box.Radius[0],
              Box.Center[0] + Box.Radius[0], Box.Center[1] - Box.Radius[1],
              Box.Center[1] + Box.Radius[1], Box.Weight);

  // Probabilistic bound for the halfspace the box satisfies entirely.
  std::vector<Region> Final{Box, Split.back()};
  Tensor Normal({1, 2}, {-1.0, 1.0});
  const OutputSpec Spec = OutputSpec::halfspace(Normal, 0.0);
  const ProbBounds Bounds = computeProbBounds(Final, Spec);
  std::printf("probabilistic bounds with the relaxed state: [%.4f, %.4f]\n",
              Bounds.Lower, Bounds.Upper);
  std::printf("box-indicator lower bound (the paper's computation): 0.60\n\n");
}

void appendixAWalkthrough() {
  std::printf("Appendix A: one-layer walkthrough\n\n");
  // Post-affine endpoints stated by the appendix: (1,2,4) -> (-1,1,1).
  Sequential Net;
  Net.add(std::make_unique<ReLU>());
  Tensor A({1, 3}, {1.0, 2.0, 4.0});
  Tensor B({1, 3}, {-1.0, 1.0, 1.0});
  std::vector<Region> Init{makeSegmentRegion(A, B)};
  PropagateConfig Config;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  auto Final = propagateRegions(Net.view(), Shape({1, 3}), std::move(Init),
                                Config, Memory, Stats);
  std::sort(Final.begin(), Final.end(),
            [](const Region &X, const Region &Y) { return X.T0 < Y.T0; });

  TablePrinter Table({"piece", "p", "start", "end"});
  int Index = 0;
  for (const auto &Piece : Final) {
    const Tensor P0 = evalCurve(Piece, Piece.T0);
    const Tensor P1 = evalCurve(Piece, Piece.T1);
    char Name[16], Weight[16], Start[64], End[64];
    std::snprintf(Name, sizeof(Name), "%d", Index++);
    std::snprintf(Weight, sizeof(Weight), "%.2f", Piece.Weight);
    std::snprintf(Start, sizeof(Start), "(%.2f, %.2f, %.2f)", P0[0], P0[1],
                  P0[2]);
    std::snprintf(End, sizeof(End), "(%.2f, %.2f, %.2f)", P1[0], P1[1],
                  P1[2]);
    Table.addRow({Name, Weight, Start, End});
  }
  Table.print();
  std::printf("\nPaper: (1,2,4)->(0,1.5,2.5) with p=0.5 and "
              "(0,1.5,2.5)->(0,1,1) with p=0.5.\n");
}

} // namespace

int main() {
  figure2Chain();
  appendixAWalkthrough();
  return 0;
}
