//===- bench/aa_warmup_zoo.cpp - train/cache every model --------*- C++ -*-===//
//
// Step 0 of the benchmark harness (named so shell globs run it first):
// trains every model the tables need and caches the weights under
// models/. Idempotent — reruns load from the cache. Also prints the
// network inventory with neuron counts and test accuracies, standing in
// for the paper's Appendix B summary.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/train/trainer.h"
#include "src/util/table.h"
#include "src/util/timer.h"

#include <cstdio>

using namespace genprove;

int main() {
  Timer Total;
  ZooConfig ZC;
  ZC.Verbose = true;
  ModelZoo Zoo(ZC);

  std::printf("GenProve model zoo warmup (models are cached under "
              "models/)\n\n");

  TablePrinter Table({"Model", "Neurons", "Metric"});
  char Buf[64];

  // Generative models.
  for (DatasetId Data :
       {DatasetId::Faces, DatasetId::Shoes, DatasetId::Digits}) {
    Vae &Model = Zoo.vae(Data);
    const int64_t Neurons = Model.decoder().countNeurons(
        Shape({1, Model.latentDim()}));
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Neurons));
    Table.addRow({std::string("VAE decoder (") + datasetDisplayName(Data) +
                      ")",
                  Buf, "-"});
  }
  {
    Vae &Model = Zoo.smallDecoderVae();
    const int64_t Neurons =
        Model.decoder().countNeurons(Shape({1, Model.latentDim()}));
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Neurons));
    Table.addRow({"DecoderSmall VAE (CelebA*)", Buf, "-"});
  }

  // Attribute detectors and classifiers.
  for (const char *Arch : {"ConvSmall", "ConvMed", "ConvLarge"}) {
    {
      Sequential &Net = Zoo.facesDetector(Arch);
      const Dataset &Set = Zoo.test(DatasetId::Faces);
      const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
      const double Acc = attributeAccuracy(Net, Set);
      char Metric[64];
      std::snprintf(Metric, sizeof(Metric), "attr acc %.1f%%", Acc * 100.0);
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(Net.countNeurons(ImgShape)));
      Table.addRow({std::string(Arch) + " detector (CelebA*)", Buf, Metric});
    }
    {
      Sequential &Net = Zoo.shoesClassifier(Arch);
      const Dataset &Set = Zoo.test(DatasetId::Shoes);
      const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
      const double Acc = classifierAccuracy(Net, Set);
      char Metric[64];
      std::snprintf(Metric, sizeof(Metric), "acc %.1f%%", Acc * 100.0);
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(Net.countNeurons(ImgShape)));
      Table.addRow({std::string(Arch) + " classifier (Zappos50k*)", Buf,
                    Metric});
    }
  }

  // The Table 6 trio.
  for (TrainScheme Scheme :
       {TrainScheme::Standard, TrainScheme::Fgsm, TrainScheme::DiffAiBox}) {
    Sequential &Net = Zoo.digitsClassifier(Scheme);
    const Dataset &Set = Zoo.test(DatasetId::Digits);
    const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
    const double Acc = classifierAccuracy(Net, Set);
    char Metric[64];
    std::snprintf(Metric, sizeof(Metric), "acc %.1f%%", Acc * 100.0);
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(Net.countNeurons(ImgShape)));
    const char *Name = Scheme == TrainScheme::Standard ? "standard"
                       : Scheme == TrainScheme::Fgsm   ? "FGSM"
                                                       : "DiffAI";
    Table.addRow({std::string("ConvBiggest ") + Name + " (MNIST*)", Buf,
                  Metric});
  }

  // Table 7 models.
  Zoo.ganDiscriminator();
  Table.addRow({"GAN discriminator (CelebA*)", "-", "-"});
  Zoo.facesFactorVae();
  Table.addRow({"FactorVAE (CelebA*)", "-", "-"});
  Zoo.facesAcai();
  Table.addRow({"ACAI (CelebA*)", "-", "-"});

  Table.print();
  std::printf("\nwarmup finished in %.1f s\n", Total.seconds());
  return 0;
}
