//===- bench/table5_specs.cpp - Table 5 / Section 5.3 specs -----*- C++ -*-===//
//
// The qualitative specifications of Table 5 and the surrounding text:
//  (a) head orientation — interpolation between an image and its flip;
//  (b) attribute independence — adding 3x the BrownHair latent direction;
//  (c) curved specification — the quadratic through the moustache-shifted
//      midpoint, certified exactly by GenProveCurve on DecoderSmall.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/data/attribute_vector.h"
#include "src/data/synth_faces.h"
#include "src/util/table.h"
#include "src/util/timer.h"

#include <cstdio>

using namespace genprove;

namespace {

GenProveConfig relaxedConfig(const BenchConfig &Bench) {
  GenProveConfig Config;
  Config.RelaxPercent = Bench.RelaxPercent;
  Config.ClusterK = Bench.ClusterK;
  Config.NodeThreshold = Bench.NodeThreshold;
  Config.MemoryBudgetBytes = Bench.MemoryBudgetBytes;
  Config.Schedule = RefinementSchedule::A;
  return Config;
}

void headOrientation(BenchEnv &Env) {
  std::printf("(a) Certifying robustness to head orientation "
              "(flip-interpolation, ConvMed detector)\n");
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Detector = Zoo.facesDetector("ConvMed");
  const auto Pipeline = concatViews(Model.decoder().view(), Detector.view());
  const Shape LatentShape({1, Model.latentDim()});
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const int64_t NumAttrs = Detector.outputShape(ImgShape).dim(1);

  const GenProve Analyzer(relaxedConfig(Env.config()));
  Rng R(101);
  const auto Pairs = flipPairs(Set.numImages(), 3, R);
  double SumLower = 0.0, SumUpper = 0.0, SumWidth = 0.0;
  int64_t NumBounds = 0;
  for (const SpecPair &Pair : Pairs) {
    const Tensor E1 = Model.encode(Set.image(Pair.First));
    const Tensor E2 = Model.encode(Set.flippedImage(Pair.First));
    const PropagatedState State =
        Analyzer.propagateSegment(Pipeline, LatentShape, E1, E2);
    for (int64_t J = 0; J < NumAttrs; ++J) {
      const OutputSpec Spec = OutputSpec::attributeSign(
          J, Set.Attributes.at(Pair.First, J) > 0.5, NumAttrs);
      const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
      SumLower += Bounds.Lower;
      SumUpper += Bounds.Upper;
      SumWidth += Bounds.width();
      ++NumBounds;
    }
  }
  std::printf("    average lower bound l = %.4f, upper bound u = %.4f, "
              "width = %s (over %lld attribute bounds)\n\n",
              SumLower / NumBounds, SumUpper / NumBounds,
              formatBound(SumWidth / NumBounds).c_str(),
              static_cast<long long>(NumBounds));
}

void attributeIndependence(BenchEnv &Env) {
  std::printf("(b) Certifying attribute independence: adding 3x the "
              "BrownHair direction (ConvMed detector)\n");
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Detector = Zoo.facesDetector("ConvMed");
  const auto Pipeline = concatViews(Model.decoder().view(), Detector.view());
  const Shape LatentShape({1, Model.latentDim()});
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const int64_t NumAttrs = Detector.outputShape(ImgShape).dim(1);

  const Tensor Direction = attributeVector(Model, Set, FaceBrownHair);
  // Pick an image without brown hair.
  int64_t Image = 0;
  for (int64_t I = 0; I < Set.numImages(); ++I)
    if (Set.Attributes.at(I, FaceBrownHair) < 0.5 &&
        Set.Attributes.at(I, FaceBald) < 0.5) {
      Image = I;
      break;
    }
  const Tensor E1 = Model.encode(Set.image(Image));
  Tensor E2 = E1.clone();
  for (int64_t J = 0; J < E2.numel(); ++J)
    E2[J] += 3.0 * Direction[J];

  const GenProve Analyzer(relaxedConfig(Env.config()));
  const PropagatedState State =
      Analyzer.propagateSegment(Pipeline, LatentShape, E1, E2);

  int64_t Robust = 0, NotRobust = 0;
  double SumWidth = 0.0;
  TablePrinter Table({"Attribute", "l", "u", "verdict"});
  for (int64_t J = 0; J < NumAttrs; ++J) {
    if (J == FaceBrownHair)
      continue; // the edited attribute itself is excluded (j != 3)
    const OutputSpec Spec = OutputSpec::attributeSign(
        J, Set.Attributes.at(Image, J) > 0.5, NumAttrs);
    const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
    SumWidth += Bounds.width();
    const bool FullyRobust = Bounds.Lower >= 1.0 - 1e-9;
    Robust += FullyRobust;
    NotRobust += Bounds.Upper < 1.0 - 1e-9 || !FullyRobust;
    Table.addRow({Set.AttributeNames[static_cast<size_t>(J)],
                  formatBound(Bounds.Lower), formatBound(Bounds.Upper),
                  FullyRobust ? "robust" : "not fully robust"});
  }
  Table.print();
  std::printf("    %lld of %lld attributes fully robust to BrownHair "
              "addition; mean interval width %s\n\n",
              static_cast<long long>(Robust),
              static_cast<long long>(NumAttrs - 1),
              formatBound(SumWidth / (NumAttrs - 1)).c_str());
}

void curvedSpecification(BenchEnv &Env) {
  std::printf("(c) Certifying curved specifications with GenProveCurve "
              "(DecoderSmall + ConvSmall, exact)\n");
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.smallDecoderVae();
  Sequential &Detector = Zoo.facesDetector("ConvSmall");
  const auto Pipeline = concatViews(Model.decoder().view(), Detector.view());
  const Shape LatentShape({1, Model.latentDim()});
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const int64_t NumAttrs = Detector.outputShape(ImgShape).dim(1);

  const Tensor Moustache = attributeVector(Model, Set, FaceMoustache);
  // e0 = head, e2 = flipped head, e1 = midpoint + 4 * moustache vector.
  int64_t Image = 0;
  for (int64_t I = 0; I < Set.numImages(); ++I)
    if (Set.Attributes.at(I, FaceMoustache) < 0.5) {
      Image = I;
      break;
    }
  const Tensor E0 = Model.encode(Set.image(Image));
  const Tensor E2 = Model.encode(Set.flippedImage(Image));
  Tensor E1({1, Model.latentDim()});
  for (int64_t J = 0; J < E1.numel(); ++J)
    E1[J] = 0.5 * (E0[J] + E2[J]) + 4.0 * Moustache[J];

  // The quadratic through e0, e1, e2 at t = 0, 0.5, 1 (Section 5.3):
  //   gamma(t) = e0 + (4 e1 - e2 - 3 e0) t + 2 (e2 + e0 - 2 e1) t^2.
  Tensor A0 = E0.clone();
  Tensor A1({1, E0.numel()});
  Tensor A2({1, E0.numel()});
  for (int64_t J = 0; J < E0.numel(); ++J) {
    A1[J] = 4.0 * E1[J] - E2[J] - 3.0 * E0[J];
    A2[J] = 2.0 * (E2[J] + E0[J] - 2.0 * E1[J]);
  }

  GenProveConfig Config; // exact: GenProveCurve
  Config.MemoryBudgetBytes = Env.config().MemoryBudgetBytes;
  const GenProve Analyzer(Config);
  Timer Clock;
  const PropagatedState State =
      Analyzer.propagateQuadratic(Pipeline, LatentShape, A0, A1, A2);
  const double Seconds = Clock.seconds();
  if (State.OutOfMemory) {
    std::printf("    (out of simulated memory; rerun with a larger "
                "budget)\n");
    return;
  }

  int64_t Independent = 0;
  double SumProb = 0.0, SumWidth = 0.0;
  for (int64_t J = 0; J < NumAttrs; ++J) {
    if (J == FaceMoustache)
      continue;
    const OutputSpec Spec = OutputSpec::attributeSign(
        J, Set.Attributes.at(Image, J) > 0.5, NumAttrs);
    const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
    SumProb += Bounds.Lower;
    SumWidth += Bounds.width();
    if (Bounds.Lower >= 1.0 - 1e-9)
      ++Independent;
  }
  std::printf("    attribute independence certified for %lld / %lld "
              "attributes; average consistency %.2f; bound width %s "
              "(exact); %0.1f seconds\n",
              static_cast<long long>(Independent),
              static_cast<long long>(NumAttrs - 1), SumProb / (NumAttrs - 1),
              formatBound(SumWidth / (NumAttrs - 1)).c_str(), Seconds);
}

} // namespace

int main() {
  BenchEnv Env;
  std::printf("Table 5 / Section 5.3: novel generative specifications\n\n");
  headOrientation(Env);
  attributeIndependence(Env);
  curvedSpecification(Env);
  return 0;
}
