//===- bench/table8_detailed.cpp - Table 8 (appendix) -----------*- C++ -*-===//
//
// Table 8: the full grid — average consistency bound widths, runtime,
// OOM fraction, and peak (simulated) device memory for every domain,
// network size and dataset, plus the sampling baseline.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;

  std::printf("Table 8: widths, runtime and memory for every domain "
              "(appendix D)\n");
  std::printf("(simulated device budget %s ~ the paper's 24 GB; peak "
              "memory reported on the 24 GB scale)\n\n",
              formatBytes(Env.config().MemoryBudgetBytes).c_str());

  TablePrinter Table({"Dataset", "Network", "Neurons", "Group", "Domain",
                      "Width (u-l)", "Seconds", "OOM (%)", "Peak (GB)"});

  struct RowSpec {
    const char *Group;
    Method Which;
    const char *Name;
  };
  const RowSpec Rows[] = {
      {"Prior Work", Method::Box, "Box"},
      {"Prior Work", Method::HybridZono, "HybridZono"},
      {"Prior Work", Method::DeepZono, "DeepZono"},
      {"Prior Work", Method::Zonotope, "Zonotope"},
      {"Our Work", Method::GenProveExact, "GenProve^0"},
      {"Our Work", Method::GenProveRelax, "GenProve^0.02_100"},
      {"99.999% Confidence", Method::Sampling, "Sampling"},
  };

  std::vector<BenchEnv::CellRequest> Wanted;
  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes})
    for (const char *Net : {"ConvSmall", "ConvMed", "ConvLarge"})
      for (const RowSpec &Row : Rows)
        Wanted.push_back({Data, Net, Row.Which});
  Env.prefetchCells(Wanted);

  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes}) {
    for (const char *Net : {"ConvSmall", "ConvMed", "ConvLarge"}) {
      for (const RowSpec &Row : Rows) {
        const GridCell &Cell = Env.cell(Data, Net, Row.Which);
        char Neurons[32], PeakGb[32];
        std::snprintf(Neurons, sizeof(Neurons), "%lld",
                      static_cast<long long>(Cell.Neurons));
        std::snprintf(PeakGb, sizeof(PeakGb), "%.2f", Cell.PeakGb);
        Table.addRow({datasetDisplayName(Data), Net, Neurons, Row.Group,
                      Row.Name, formatBound(Cell.MeanWidth),
                      formatSeconds(Cell.MeanSeconds),
                      formatPercent(Cell.FractionOom), PeakGb});
      }
    }
  }
  Table.print();
  std::printf("\nCSV copy of the grid: results/grid.csv\n");
  return 0;
}
