//===- bench/table4_sampling.cpp - Table 4 reproduction ---------*- C++ -*-===//
//
// Table 4: verified GenProve bounds vs the 99.999%-confidence sampling
// baseline (Clopper-Pearson). GenProve's bounds are always sound; the
// sampling interval is only correct with the stated confidence.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;

  std::printf("Table 4: bound width (u - l), GenProve vs sampling at "
              "99.999%% confidence (ConvLarge, %lld samples per pair)\n\n",
              static_cast<long long>(Env.config().SamplesPerPair));

  TablePrinter Table(
      {"Guarantee", "Domain", "CelebA*", "Zappos50k*"});
  Env.prefetchCells({{DatasetId::Faces, "ConvLarge", Method::GenProveRelax},
                     {DatasetId::Shoes, "ConvLarge", Method::GenProveRelax},
                     {DatasetId::Faces, "ConvLarge", Method::Sampling},
                     {DatasetId::Shoes, "ConvLarge", Method::Sampling}});
  {
    const GridCell &F =
        Env.cell(DatasetId::Faces, "ConvLarge", Method::GenProveRelax);
    const GridCell &S =
        Env.cell(DatasetId::Shoes, "ConvLarge", Method::GenProveRelax);
    Table.addRow({"Verified Correctness", "GenProve^0.02_100",
                  formatBound(F.MeanWidth), formatBound(S.MeanWidth)});
  }
  {
    const GridCell &F =
        Env.cell(DatasetId::Faces, "ConvLarge", Method::Sampling);
    const GridCell &S =
        Env.cell(DatasetId::Shoes, "ConvLarge", Method::Sampling);
    Table.addRow({"99.999% Confidence", "Sampling", formatBound(F.MeanWidth),
                  formatBound(S.MeanWidth)});
  }
  Table.print();
  std::printf("\nPaper shape: GenProve's verified widths beat the sampling "
              "interval, which additionally is only statistically "
              "correct.\n");
  return 0;
}
