//===- bench/fig1_interpolation.cpp - Figure 1 reproduction -----*- C++ -*-===//
//
// Figure 1 contrasts latent-space interpolation (realistic intermediate
// images) with naive pixel-wise interpolation (ghosting artifacts that no
// real image distribution contains). We quantify the same contrast: the
// GAN discriminator's realism score and the attribute-detector margin,
// sampled along both paths. The convex hull of the generated endpoints
// contains the pixel-wise average — which scores far less "real" — which
// is exactly why convex relaxations fail on generative specifications.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;
  ModelZoo &Zoo = Env.zoo();
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Discriminator = Zoo.ganDiscriminator();
  Sequential &Detector = Zoo.facesDetector("ConvMed");
  const int64_t NumAttrs = Set.numAttributes();

  std::printf("Figure 1: latent-space vs pixel-wise interpolation\n");
  std::printf("(discriminator realism score and attribute-verdict "
              "retention along both paths)\n\n");

  // Use an image and its flip (the head-orientation setting of Figure 1).
  const int64_t Image = 3;
  const Tensor X1 = Set.image(Image);
  const Tensor X2 = Set.flippedImage(Image);
  const Tensor E1 = Model.encode(X1);
  const Tensor E2 = Model.encode(X2);

  // Two series per path: the discriminator's realism score and the
  // fraction of ground-truth attribute verdicts the detector keeps (the
  // pixel-wise blends of a face and its flip ghost features apart, which
  // degrades the verdicts — the Figure 1 phenomenon).
  TablePrinter Table({"alpha", "latent score", "pixel score",
                      "latent attrs kept", "pixel attrs kept"});
  int64_t LatentWorst = NumAttrs, PixelWorst = NumAttrs;
  for (int Step = 0; Step <= 10; ++Step) {
    const double Alpha = Step / 10.0;
    // Latent path: decode the interpolated encoding.
    Tensor E({1, Model.latentDim()});
    for (int64_t J = 0; J < E.numel(); ++J)
      E[J] = E1[J] + Alpha * (E2[J] - E1[J]);
    const Tensor LatentImg = Model.decode(E);
    const double LatentScore = Discriminator.predict(LatentImg)[0];
    // Pixel path: blend the raw images.
    Tensor PixelImg = X1.clone();
    for (int64_t J = 0; J < PixelImg.numel(); ++J)
      PixelImg[J] = X1[J] + Alpha * (X2[J] - X1[J]);
    const double PixelScore = Discriminator.predict(PixelImg)[0];

    auto AttrsKept = [&](const Tensor &Img) {
      const Tensor Logits = Detector.predict(Img);
      int64_t Kept = 0;
      for (int64_t J = 0; J < NumAttrs; ++J) {
        const bool Predicted = Logits[J] > 0.0;
        const bool Truth = Set.Attributes.at(Image, J) > 0.5;
        Kept += Predicted == Truth;
      }
      return Kept;
    };
    const int64_t LatentKept = AttrsKept(LatentImg);
    const int64_t PixelKept = AttrsKept(PixelImg);
    LatentWorst = std::min(LatentWorst, LatentKept);
    PixelWorst = std::min(PixelWorst, PixelKept);

    char A[16], Lk[24], Pk[24];
    std::snprintf(A, sizeof(A), "%.1f", Alpha);
    std::snprintf(Lk, sizeof(Lk), "%lld/%lld",
                  static_cast<long long>(LatentKept),
                  static_cast<long long>(NumAttrs));
    std::snprintf(Pk, sizeof(Pk), "%lld/%lld",
                  static_cast<long long>(PixelKept),
                  static_cast<long long>(NumAttrs));
    Table.addRow({A, formatBound(LatentScore), formatBound(PixelScore), Lk,
                  Pk});
  }
  Table.print();
  std::printf("\nworst attributes kept: latent path %lld/%lld, pixel path "
              "%lld/%lld\n",
              static_cast<long long>(LatentWorst),
              static_cast<long long>(NumAttrs),
              static_cast<long long>(PixelWorst),
              static_cast<long long>(NumAttrs));
  std::printf("Paper context: in the paper, mid-interpolation pixel blends "
              "of 64x64 faces ghost badly off the data manifold while the "
              "latent path stays realistic. At this scale the synthetic "
              "faces are nearly left-right symmetric, so pixel blends of a "
              "face with its flip remain close to valid images, and the "
              "blurry VAE decodes score lower on both metrics — see "
              "EXPERIMENTS.md for the discussion. The structural point the "
              "figure supports (the convex hull of the generated endpoints "
              "contains pixel blends, which convex domains must include) "
              "is independent of which path scores higher and is what "
              "Table 2 measures.\n");
  return 0;
}
