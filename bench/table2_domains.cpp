//===- bench/table2_domains.cpp - Table 2 reproduction ----------*- C++ -*-===//
//
// Table 2: average consistency bound widths (lower is better) of the
// convex baseline domains vs GenProve across three network sizes. All
// methods are lifted probabilistically.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"

#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  BenchEnv Env;

  std::printf("Table 2: average consistency bound width (u - l), lower is "
              "better\n\n");

  // Fan the table's missing grid cells out over the thread pool up front.
  std::vector<BenchEnv::CellRequest> Wanted;
  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes})
    for (const char *Net : {"ConvSmall", "ConvMed", "ConvLarge"})
      for (Method M : {Method::Box, Method::HybridZono, Method::DeepZono,
                       Method::Zonotope, Method::GenProveExact,
                       Method::GenProveRelax})
        Wanted.push_back({Data, Net, M});
  Env.prefetchCells(Wanted);

  for (DatasetId Data : {DatasetId::Faces, DatasetId::Shoes}) {
    std::printf("Dataset: %s\n", datasetDisplayName(Data));
    TablePrinter Table(
        {"Group", "Domain", "ConvSmall", "ConvMed", "ConvLarge", "Precise",
         "Scalable"});
    struct RowSpec {
      const char *Group;
      Method Which;
      const char *Name;
    };
    const RowSpec Rows[] = {
        {"Prior Work", Method::Box, "Box"},
        {"Prior Work", Method::HybridZono, "HybridZono"},
        {"Prior Work", Method::DeepZono, "DeepZono"},
        {"Prior Work", Method::Zonotope, "Zonotope"},
        {"Our Work", Method::GenProveExact, "GenProve^0"},
        {"Our Work", Method::GenProveRelax, "GenProve^0.02_100"},
    };
    for (const RowSpec &Row : Rows) {
      double Widths[3] = {1.0, 1.0, 1.0};
      double WorstOom = 0.0;
      int Idx = 0;
      for (const char *Net : {"ConvSmall", "ConvMed", "ConvLarge"}) {
        const GridCell &Cell = Env.cell(Data, Net, Row.Which);
        Widths[Idx++] = Cell.MeanWidth;
        WorstOom = std::max(WorstOom, Cell.FractionOom);
      }
      const bool Precise = Widths[0] < 0.1;
      const bool Scalable = WorstOom < 0.5;
      Table.addRow({Row.Group, Row.Name, formatBound(Widths[0]),
                    formatBound(Widths[1]), formatBound(Widths[2]),
                    Precise ? "yes" : "-", Scalable ? "yes" : "-"});
    }
    Table.print();
    std::printf("\n");
  }
  std::printf("Paper shape: convex domains give widths near 1 (or OOM); "
              "GenProve^0 is exact where it fits; GenProve^0.02_100 stays "
              "tight at every size.\n");
  return 0;
}
